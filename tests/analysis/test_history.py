"""Unit tests for committed-history recording."""

from repro.analysis.history import History


def test_records_in_commit_order():
    history = History()
    history.record(1, 1.0, reads={0: 0}, writes={0: 1})
    history.record(2, 2.0, reads={0: 1}, writes={})
    assert len(history) == 2
    assert [t.txn_id for t in history] == [1, 2]
    assert history.transactions[0].commit_time == 1.0


def test_installer_lookup():
    history = History()
    history.record(1, 1.0, reads={}, writes={5: 1})
    history.record(2, 2.0, reads={}, writes={5: 2})
    assert history.installer_of(5, 1) == 1
    assert history.installer_of(5, 2) == 2
    assert history.installer_of(5, 0) is None  # initial load
    assert history.installer_of(9, 1) is None


def test_records_are_snapshots():
    history = History()
    reads = {0: 0}
    history.record(1, 1.0, reads=reads, writes={})
    reads[0] = 99
    assert history.transactions[0].reads[0] == 0
