"""Unit tests for the serializability oracle."""

import pytest

from repro.analysis.history import History
from repro.analysis.serializability import (
    check_serializable,
    precedence_graph,
    serialization_order,
)
from repro.errors import InvariantViolation


def test_serial_history_is_serializable():
    history = History()
    history.record(1, 1.0, reads={0: 0}, writes={0: 1})
    history.record(2, 2.0, reads={0: 1}, writes={0: 2})
    assert check_serializable(history)
    assert serialization_order(history) == [1, 2]


def test_write_read_edge():
    history = History()
    history.record(1, 1.0, reads={}, writes={7: 1})
    history.record(2, 2.0, reads={7: 1}, writes={})
    graph = precedence_graph(history)
    assert graph.has_edge(1, 2)


def test_read_write_edge():
    history = History()
    # T2 read version 0 of page 7; T1 installed version 1 -> T2 before T1.
    history.record(1, 1.0, reads={}, writes={7: 1})
    history.record(2, 2.0, reads={7: 0}, writes={})
    graph = precedence_graph(history)
    assert graph.has_edge(2, 1)


def test_write_write_edge():
    history = History()
    history.record(1, 1.0, reads={}, writes={3: 1})
    history.record(2, 2.0, reads={}, writes={3: 2})
    graph = precedence_graph(history)
    assert graph.has_edge(1, 2)


def test_cyclic_history_detected():
    history = History()
    # Classic non-serializable interleaving: each read the initial version
    # of the page the other wrote.
    history.record(1, 1.0, reads={0: 0, 1: 0}, writes={0: 1})
    history.record(2, 2.0, reads={1: 0, 0: 0}, writes={1: 1})
    assert not check_serializable(history)
    assert serialization_order(history) is None


def test_read_of_uninstalled_version_rejected():
    history = History()
    history.record(1, 1.0, reads={0: 5}, writes={})
    with pytest.raises(InvariantViolation):
        precedence_graph(history)


def test_double_install_rejected():
    history = History()
    history.record(1, 1.0, reads={}, writes={0: 1})
    history.record(2, 2.0, reads={}, writes={0: 1})
    with pytest.raises(InvariantViolation):
        precedence_graph(history)


def test_self_edges_ignored():
    history = History()
    # T1 reads the version it will overwrite: no self-edge, serializable.
    history.record(1, 1.0, reads={0: 0}, writes={0: 1})
    assert check_serializable(history)
    graph = precedence_graph(history)
    assert not graph.has_edge(1, 1)


def test_three_way_cycle_detected():
    history = History()
    history.record(1, 1.0, reads={0: 0}, writes={1: 1})
    history.record(2, 2.0, reads={1: 0}, writes={2: 1})
    history.record(3, 3.0, reads={2: 0}, writes={0: 1})
    # read-write edges (reader before next installer): T1->T3 (page 0),
    # T2->T1 (page 1), T3->T2 (page 2) — a three-cycle.
    assert not check_serializable(history)
