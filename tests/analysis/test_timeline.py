"""Tests for the ASCII timeline recorder."""

import pytest

from repro.analysis.timeline import TimelineRecorder
from repro.core.scc_2s import SCC2S
from repro.errors import ConfigurationError
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, make_class


def run_fig2b(recorder):
    protocol = SCC2S()
    recorder.attach(protocol)
    specs = fixed_workload(
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=16)
    system.load_workload(specs)
    system.run()
    return protocol, system


def test_records_full_lifecycle():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    kinds = [e.kind for e in recorder.events]
    assert "spawn" in kinds
    assert "block" in kinds
    assert "promote" in kinds
    assert "commit" in kinds
    assert "kill" in kinds
    # Figure 2(b): no restart happens under SCC.
    assert "restart" not in kinds


def test_event_sequence_for_victim_transaction():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    kinds = [e.kind for e in recorder.events_for(1)]
    # T1: optimistic spawn; speculative spawn+block (order depends on the
    # fork instant); the optimistic dies at T0's commit; the shadow is
    # promoted, finishes and commits.
    assert kinds[0] == "spawn"
    assert kinds[-2:] == ["finish", "commit"]
    assert "promote" in kinds
    assert kinds.index("kill") < kinds.index("promote")


def test_lanes_per_transaction():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    assert len(recorder.lanes_for(0)) == 1  # never speculated
    assert len(recorder.lanes_for(1)) == 2  # optimistic + shadow


def test_render_produces_expected_markers():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    art = recorder.render(width=40)
    lines = art.splitlines()
    assert len(lines) == 4  # header + 3 lanes
    assert "T0" in art and "T1" in art
    body = "\n".join(lines[1:])
    for marker in "SBPCA":
        assert marker in body, marker
    # The promoted lane shows a blocked stretch then execution.
    promoted_line = next(line for line in lines[1:] if "P" in line)
    assert "." in promoted_line
    assert "=" in promoted_line


def test_render_empty_and_validation():
    recorder = TimelineRecorder()
    assert "no shadow events" in recorder.render()
    run_fig2b(recorder)
    with pytest.raises(ConfigurationError):
        recorder.render(width=4)


def test_attach_refuses_second_observer():
    recorder = TimelineRecorder()
    protocol, _ = run_fig2b(recorder)
    with pytest.raises(ConfigurationError):
        TimelineRecorder().attach(protocol)


def test_observer_disabled_costs_nothing():
    # A protocol without observer runs identically (same commit times).
    from tests.conftest import commit_time_of

    with_rec = TimelineRecorder()
    _, traced = run_fig2b(with_rec)

    protocol = SCC2S()
    specs = fixed_workload(
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=16)
    system.load_workload(specs)
    system.run()
    assert commit_time_of(system, 1) == commit_time_of(traced, 1)


# ----------------------------------------------------------------------
# structured rows and trace-file ingestion
# ----------------------------------------------------------------------


def run_fig2b_traced():
    """The Figure 2(b) scenario again, observed through the tracer."""
    from repro.metrics.stats import MetricsCollector
    from repro.system.model import RTDBSystem
    from repro.system.resources import InfiniteResources
    from repro.telemetry.tracer import MemoryTracer

    protocol = SCC2S()
    specs = fixed_workload(
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    tracer = MemoryTracer()
    # The tracer must be there at construction: protocols cache it at
    # bind time (the zero-cost-when-disabled contract).
    system = RTDBSystem(
        protocol=protocol,
        num_pages=16,
        resources=InfiniteResources(cpu_time=1.0, io_time=0.0),
        metrics=MetricsCollector(),
        record_history=True,
        tracer=tracer,
    )
    system.load_workload(specs)
    system.run()
    return tracer


def test_rows_mirror_render():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    rows = recorder.rows(width=40)
    art = recorder.render(width=40)
    assert len(rows) == 3
    # Every label and painted track appears verbatim in the rendering.
    for row in rows:
        assert row.label in art
        assert row.track in art
    promoted = [row for row in rows if row.promoted]
    assert len(promoted) == 1
    assert promoted[0].mode == "speculative"


def test_rows_empty_without_events_and_validates_width():
    recorder = TimelineRecorder()
    assert recorder.rows() == []
    run_fig2b(recorder)
    with pytest.raises(ConfigurationError):
        recorder.rows(width=4)


def test_from_trace_matches_live_observer_timeline():
    live = TimelineRecorder()
    run_fig2b(live)
    tracer = run_fig2b_traced()
    replayed = TimelineRecorder.from_trace(tracer.events)
    # Same lanes, same per-lane shadow lifecycle, same rendering.
    live_kinds = {
        lane: [e.kind for e in live.events_for(lane)]
        for lane in (0, 1)
    }
    replay_kinds = {
        lane: [e.kind for e in replayed.events_for(lane)]
        for lane in (0, 1)
    }
    assert replay_kinds == live_kinds
    # Identical layout lane by lane.  Labels differ only in the lane id:
    # the live observer shows process-global shadow serials, the trace
    # shows run-local lanes (the tracer's normalization).
    live_rows = live.rows(width=40)
    replay_rows = replayed.rows(width=40)
    assert [
        (r.txn_id, r.mode, r.promoted, r.track) for r in replay_rows
    ] == [
        (r.txn_id, r.mode, r.promoted, r.track) for r in live_rows
    ]
    assert [r.serial for r in replay_rows] == [0, 1, 2]


def test_from_trace_handles_plain_execution_lanes():
    from repro.telemetry.events import TraceEvent

    events = [
        TraceEvent(time=0.0, kind="step_complete", txn=0, lane=0, pos=1,
                   data={"page": 3, "write": False}),
        TraceEvent(time=1.0, kind="block", txn=0, lane=0, pos=1),
        TraceEvent(time=2.0, kind="txn_finish", txn=0, lane=0, pos=2),
        TraceEvent(time=2.0, kind="commit", txn=0, lane=0, pos=2),
        TraceEvent(time=2.5, kind="restart", txn=1),  # no lane: skipped
    ]
    recorder = TimelineRecorder.from_trace(events)
    rows = recorder.rows(width=24)
    assert len(rows) == 1
    assert rows[0].mode == "execution"
    assert "exec" in rows[0].label
