"""Tests for the ASCII timeline recorder."""

import pytest

from repro.analysis.timeline import TimelineRecorder
from repro.core.scc_2s import SCC2S
from repro.errors import ConfigurationError
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, make_class


def run_fig2b(recorder):
    protocol = SCC2S()
    recorder.attach(protocol)
    specs = fixed_workload(
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=16)
    system.load_workload(specs)
    system.run()
    return protocol, system


def test_records_full_lifecycle():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    kinds = [e.kind for e in recorder.events]
    assert "spawn" in kinds
    assert "block" in kinds
    assert "promote" in kinds
    assert "commit" in kinds
    assert "kill" in kinds
    # Figure 2(b): no restart happens under SCC.
    assert "restart" not in kinds


def test_event_sequence_for_victim_transaction():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    kinds = [e.kind for e in recorder.events_for(1)]
    # T1: optimistic spawn; speculative spawn+block (order depends on the
    # fork instant); the optimistic dies at T0's commit; the shadow is
    # promoted, finishes and commits.
    assert kinds[0] == "spawn"
    assert kinds[-2:] == ["finish", "commit"]
    assert "promote" in kinds
    assert kinds.index("kill") < kinds.index("promote")


def test_lanes_per_transaction():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    assert len(recorder.lanes_for(0)) == 1  # never speculated
    assert len(recorder.lanes_for(1)) == 2  # optimistic + shadow


def test_render_produces_expected_markers():
    recorder = TimelineRecorder()
    run_fig2b(recorder)
    art = recorder.render(width=40)
    lines = art.splitlines()
    assert len(lines) == 4  # header + 3 lanes
    assert "T0" in art and "T1" in art
    body = "\n".join(lines[1:])
    for marker in "SBPCA":
        assert marker in body, marker
    # The promoted lane shows a blocked stretch then execution.
    promoted_line = next(line for line in lines[1:] if "P" in line)
    assert "." in promoted_line
    assert "=" in promoted_line


def test_render_empty_and_validation():
    recorder = TimelineRecorder()
    assert "no shadow events" in recorder.render()
    run_fig2b(recorder)
    with pytest.raises(ConfigurationError):
        recorder.render(width=4)


def test_attach_refuses_second_observer():
    recorder = TimelineRecorder()
    protocol, _ = run_fig2b(recorder)
    with pytest.raises(ConfigurationError):
        TimelineRecorder().attach(protocol)


def test_observer_disabled_costs_nothing():
    # A protocol without observer runs identically (same commit times).
    from tests.conftest import commit_time_of

    with_rec = TimelineRecorder()
    _, traced = run_fig2b(with_rec)

    protocol = SCC2S()
    specs = fixed_workload(
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=16)
    system.load_workload(specs)
    system.run()
    assert commit_time_of(system, 1) == commit_time_of(traced, 1)
