"""Shared test fixtures and scenario-driving helpers.

The ``run_scenario`` helper is the workhorse of the protocol tests: it
builds a hand-crafted workload (explicit programs, arrivals, deadlines),
runs it under a given protocol with unit step time (1 second per page
access, zero I/O), and returns the finished system for inspection.  With
unit steps, commit times are small integers and scenario tests can assert
exact schedules — the paper's figures become executable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.metrics.stats import MetricsCollector
from repro.protocols.base import CCProtocol
from repro.system.model import RTDBSystem
from repro.system.resources import InfiniteResources, ResourceManager
from repro.txn.generator import fixed_workload
from repro.txn.spec import Step
from repro.values.classes import TransactionClass


def make_class(
    name: str = "test",
    num_steps: int = 4,
    write_probability: float = 0.25,
    slack_factor: float = 2.0,
    value: float = 1.0,
    alpha_degrees: float = 45.0,
    weight: float = 1.0,
) -> TransactionClass:
    """A TransactionClass with convenient defaults for unit tests."""
    return TransactionClass(
        name=name,
        num_steps=num_steps,
        write_probability=write_probability,
        slack_factor=slack_factor,
        value=value,
        alpha_degrees=alpha_degrees,
        weight=weight,
    )


def R(page: int) -> Step:
    """A read step (test shorthand)."""
    return Step(page=page, is_write=False)


def W(page: int) -> Step:
    """A read-modify-write step (test shorthand)."""
    return Step(page=page, is_write=True)


def build_system(
    protocol: CCProtocol,
    num_pages: int = 64,
    step_time: float = 1.0,
    resources: Optional[ResourceManager] = None,
    warmup: int = 0,
) -> RTDBSystem:
    """An RTDBSystem with unit-time steps for deterministic scenarios."""
    return RTDBSystem(
        protocol=protocol,
        num_pages=num_pages,
        resources=resources or InfiniteResources(cpu_time=step_time, io_time=0.0),
        metrics=MetricsCollector(warmup_commits=warmup),
        record_history=True,
    )


def run_scenario(
    protocol: CCProtocol,
    programs: Sequence[Sequence[Step]],
    arrivals: Optional[Sequence[float]] = None,
    deadlines: Optional[Sequence[Optional[float]]] = None,
    txn_class: Optional[TransactionClass] = None,
    num_pages: int = 64,
    step_time: float = 1.0,
    run: bool = True,
) -> RTDBSystem:
    """Run a hand-crafted scenario to completion and return the system."""
    if arrivals is None:
        arrivals = [0.0] * len(programs)
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals,
        txn_class=txn_class or make_class(num_steps=max(len(p) for p in programs)),
        step_duration=step_time,
        deadlines=deadlines,
    )
    system = build_system(protocol, num_pages=num_pages, step_time=step_time)
    system.load_workload(specs)
    if run:
        system.run()
    return system


def commit_time_of(system: RTDBSystem, txn_id: int) -> float:
    """Commit time of one transaction from the recorded history."""
    assert system.history is not None
    for committed in system.history:
        if committed.txn_id == txn_id:
            return committed.commit_time
    raise AssertionError(f"T{txn_id} never committed")


def commit_order(system: RTDBSystem) -> list[int]:
    """Transaction ids in commit order."""
    assert system.history is not None
    return [committed.txn_id for committed in system.history]


@pytest.fixture
def baseline_class() -> TransactionClass:
    """The paper's baseline transaction class (16 pages, 25% update)."""
    return make_class(
        name="baseline", num_steps=16, write_probability=0.25, slack_factor=2.0
    )
