"""Unit tests for the access index and conflict table."""

import pytest

from repro.core.conflict_table import AccessIndex, ConflictTable
from repro.errors import InvariantViolation


class TestConflictTable:
    def test_record_new_writer(self):
        table = ConflictTable()
        assert table.record(writer=5, page=10, position=3)
        assert 5 in table
        record = table.get(5)
        assert record.pages == {10}
        assert record.first_pos == 3

    def test_merge_earlier_page_moves_blocking_point(self):
        table = ConflictTable()
        table.record(5, page=10, position=3)
        assert table.record(5, page=11, position=1)  # Figure 5/6 situation
        assert table.get(5).first_pos == 1
        assert table.get(5).pages == {10, 11}

    def test_duplicate_page_is_noop(self):
        table = ConflictTable()
        table.record(5, page=10, position=3)
        assert not table.record(5, page=10, position=3)
        assert not table.record(5, page=10, position=7)  # later pos ignored

    def test_records_sorted_by_first_position(self):
        table = ConflictTable()
        table.record(5, page=10, position=3)
        table.record(6, page=11, position=1)
        table.record(7, page=12, position=2)
        assert [r.writer for r in table.records()] == [6, 7, 5]

    def test_remove_writer(self):
        table = ConflictTable()
        table.record(5, page=10, position=3)
        table.remove_writer(5)
        assert 5 not in table
        assert len(table) == 0
        table.remove_writer(5)  # idempotent


class TestAccessIndex:
    def test_read_and_write_tracking(self):
        index = AccessIndex()
        index.add_read(1, page=10, position=2)
        index.add_write(2, page=10)
        assert index.readers_of(10) == {1}
        assert index.writers_of(10) == {2}
        assert index.written_by(2) == {10}
        assert index.writes_page(2, 10)
        assert not index.writes_page(1, 10)
        assert index.first_read_position(1, 10) == 2

    def test_first_read_position_keeps_minimum(self):
        index = AccessIndex()
        index.add_read(1, page=10, position=5)
        index.add_read(1, page=10, position=2)
        index.add_read(1, page=10, position=9)
        assert index.first_read_position(1, 10) == 2

    def test_unknown_read_position_raises(self):
        index = AccessIndex()
        with pytest.raises(InvariantViolation):
            index.first_read_position(1, 10)

    def test_remove_txn_cleans_both_sides(self):
        index = AccessIndex()
        index.add_read(1, 10, 0)
        index.add_write(1, 11)
        index.add_read(2, 10, 1)
        index.remove_txn(1)
        assert index.readers_of(10) == {2}
        assert index.writers_of(11) == set()
        assert index.written_by(1) == set()
        index.remove_txn(1)  # idempotent

    def test_blocked_pages_for_wait_set(self):
        index = AccessIndex()
        index.add_write(1, 10)
        index.add_write(2, 11)
        index.add_write(3, 12)
        assert index.blocked_page_for(9, [1, 2]) == {10, 11}
