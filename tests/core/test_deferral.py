"""Unit tests for the deferral scaffolding (termination policies)."""

import pytest

from repro.core.deferral import DeferredTermination, ImmediateCommit
from repro.core.scc_ks import SCCkS
from repro.errors import ConfigurationError, ProtocolError
from tests.conftest import R, W, build_system, commit_time_of
from repro.txn.generator import fixed_workload
from tests.conftest import make_class


class NeverCommit(DeferredTermination):
    """Defers forever (until the max_deferral valve or conflict-free)."""

    def should_commit(self, runtime, now):
        return False


class AlwaysCommit(DeferredTermination):
    def should_commit(self, runtime, now):
        return True


def run_with_policy(policy, programs, arrivals=None, deadlines=None):
    protocol = SCCkS(k=2, termination=policy)
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals or [0.0] * len(programs),
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=1.0,
        deadlines=deadlines,
    )
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.run()
    return system


def test_immediate_commit_at_finish():
    protocol = SCCkS(k=2, termination=ImmediateCommit())
    specs = fixed_workload(
        programs=[[R(0), R(1)]],
        arrivals=[0.0],
        txn_class=make_class(num_steps=2),
        step_duration=1.0,
    )
    system = build_system(protocol)
    system.load_workload(specs)
    system.run()
    assert commit_time_of(system, 0) == pytest.approx(2.0)


def test_conflict_free_transactions_commit_despite_policy():
    # NeverCommit still lets conflict-free transactions through (paper:
    # "If T_u does not conflict ... commit it").
    system = run_with_policy(
        NeverCommit(period=0.5, evaluate_eagerly=True),
        programs=[[R(0), R(1)], [R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)


def test_always_commit_behaves_like_immediate_on_ticks():
    system = run_with_policy(
        AlwaysCommit(period=0.5, evaluate_eagerly=True),
        programs=[[W(0), R(1), R(2)], [R(3), R(0), R(4), R(5)]],
    )
    assert len(system.history) == 2


class CommitWhenPastTime(DeferredTermination):
    """Defers until the clock reaches a threshold (test stub)."""

    def __init__(self, threshold, **kwargs):
        super().__init__(**kwargs)
        self.threshold = threshold

    def should_commit(self, runtime, now):
        return now >= self.threshold


def test_deferral_resolves_when_policy_allows():
    # T0 finishes at 2 but is deferred until the policy's threshold (3.5,
    # evaluated on the 0.5 tick grid); the conflicting reader T1 finishes
    # at 4 having read the pre-T0 version of page 0 (serialized first).
    system = run_with_policy(
        CommitWhenPastTime(3.5, period=0.5, evaluate_eagerly=True),
        programs=[[R(8), W(0)], [R(0), R(9), R(10), R(11)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(3.5)
    # T1's exposed optimistic died at 3.5; its blocked shadow (position 0)
    # resumed and re-ran all four steps: commit at 7.5, no scratch restart.
    assert commit_time_of(system, 1) == pytest.approx(7.5)
    assert system.metrics.restarts == 0
    assert system.metrics.summary().deferred_commits >= 1


def test_max_deferral_valve_forces_commit():
    system = run_with_policy(
        NeverCommit(period=0.5, evaluate_eagerly=True, max_deferral=1.0),
        programs=[[R(8), W(0)], [R(0), R(9), R(10), R(11), R(12), R(13)]],
    )
    # T0 finished at 2; the valve forces its commit at ~3.0 even though
    # the conflicting T1 is still executing (T1 then falls back/restarts).
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert len(system.history) == 2


def test_deferred_metric_counted_once_per_episode():
    # Deferred across several ticks, still one deferral episode.
    system = run_with_policy(
        CommitWhenPastTime(4.0, period=0.5, evaluate_eagerly=True),
        programs=[[R(8), W(0)], [R(0), R(9), R(10), R(11)]],
    )
    assert system.metrics.summary().deferred_commits == 1


def test_tick_period_validated():
    with pytest.raises(ConfigurationError):
        NeverCommit(period=0.0, evaluate_eagerly=True)
    with pytest.raises(ConfigurationError):
        NeverCommit(period=1.0, evaluate_eagerly=True, max_deferral=-1.0)


def test_policy_cannot_bind_twice():
    policy = AlwaysCommit(period=1.0, evaluate_eagerly=True)
    SCCkS(k=2, termination=policy)
    with pytest.raises(ProtocolError):
        SCCkS(k=2, termination=policy)


def test_unbound_policy_rejects_use():
    policy = AlwaysCommit(period=1.0, evaluate_eagerly=True)
    with pytest.raises(ProtocolError):
        _ = policy.protocol
