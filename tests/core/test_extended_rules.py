"""Tests for §3.2's *extended* Read and Write Rules under deferral.

While a finished shadow awaits commitment: (1) other transactions reading
its writes still register conflicts against it (extended Read Rule), and
(2) a new writer conflicting with the *finished* transaction still gets a
speculative shadow created on the finished transaction's behalf, so that
losing the race costs a resume, not a restart (extended Write Rule).
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.deferral import DeferredTermination
from repro.core.scc_ks import SCCkS
from repro.protocols.base import ExecutionState
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, commit_time_of, make_class


class CommitAfter(DeferredTermination):
    """Defers every finished shadow until a fixed time (test stub)."""

    def __init__(self, threshold: float):
        super().__init__(period=0.5, evaluate_eagerly=True)
        self.threshold = threshold

    def should_commit(self, runtime, now):
        return now >= self.threshold


def test_extended_write_rule_creates_shadow_for_finished_txn():
    # T0 = [W(5), R(1), R(0)] finishes at t=3 and stays deferred: T2 read
    # T0's written page 5 at t=1, an outgoing conflict that keeps T0 in
    # the pool until the threshold.  T1 writes page 0 at t=4 — a
    # write-after-read conflict against the *finished* T0.  The extended
    # Write Rule must fork a speculative shadow for T0 anyway.
    protocol = SCCkS(k=2, termination=CommitAfter(9.0))
    specs = fixed_workload(
        programs=[
            [W(5), R(1), R(0)],
            [R(8), R(9), R(7), W(0), R(10), R(11)],
            [R(5), R(20), R(21), R(22), R(23), R(24), R(25)],
        ],
        arrivals=[0.0, 0.0, 0.0],
        txn_class=make_class(num_steps=7),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=32)
    system.load_workload(specs)
    system.sim.run(until=4.5)
    runtime = protocol.runtime_of(0)
    assert runtime.finished_waiting
    # The extended Write Rule forked a shadow for the *finished* T0,
    # blocked before its read of page 0.
    assert list(runtime.speculatives) == [1]
    shadow = runtime.speculatives[1]
    assert shadow.alive
    assert not shadow.has_read(0)
    system.sim.run()
    # All transactions eventually commit (the stub policy releases at 9;
    # pool evaluation is serialization-consistent, readers first), with no
    # restart anywhere.
    assert len(system.history) == 3
    assert system.metrics.restarts == 0
    assert check_serializable(system.history)


def test_extended_read_rule_conflicts_against_finished_writer():
    # T0 = [R(8), W(0)] finishes at t=2 with an uncommitted write of page
    # 0 and is kept deferred by the long reader T2 (which read page 0 at
    # t=1).  T1 starts at t=2.5 and reads page 0 at t=3.5: the (extended)
    # Read Rule must record the conflict against the finished-but-
    # uncommitted T0 and fork a blocked shadow for T1.
    protocol = SCCkS(k=2, termination=CommitAfter(6.0))
    specs = fixed_workload(
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10)],
            [R(0), R(20), R(21), R(22), R(23), R(24)],
        ],
        arrivals=[0.0, 2.5, 0.0],
        txn_class=make_class(num_steps=6),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=32)
    system.load_workload(specs)
    system.sim.run(until=4.0)
    assert protocol.runtime_of(0).finished_waiting
    reader = protocol.runtime_of(1)
    assert 0 in reader.conflicts
    assert list(reader.speculatives) == [0]
    assert reader.speculatives[0].state in (
        ExecutionState.BLOCKED,
        ExecutionState.RUNNING,
    )
    system.sim.run()
    # T0 commits at 6 (threshold); T1's exposed optimistic is replaced by
    # the blocked shadow which resumes with the committed value.
    assert commit_time_of(system, 0) == pytest.approx(6.0)
    assert system.metrics.restarts == 0
    assert check_serializable(system.history)


def test_deferred_commit_still_broadcasts_exposure():
    # When the deferred shadow finally commits, every exposed shadow in
    # the system dies exactly as with an immediate commit.
    protocol = SCCkS(k=1, termination=CommitAfter(4.0))  # no speculation
    specs = fixed_workload(
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11), R(12), R(13)],
        ],
        arrivals=[0.0, 0.0],
        txn_class=make_class(num_steps=6),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=32)
    system.load_workload(specs)
    system.run()
    assert commit_time_of(system, 0) == pytest.approx(4.0)
    # k=1: no shadow to adopt; the reader restarts at t=4 and reruns all 6
    # steps.
    assert system.metrics.restarts == 1
    assert commit_time_of(system, 1) == pytest.approx(10.0)
    assert check_serializable(system.history)
