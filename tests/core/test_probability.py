"""Unit tests for SCC-DC's probabilistic machinery (Definitions 4-7)."""

import pytest

from repro.core.probability import (
    AdoptionProfile,
    ShadowComponent,
    adoption_profiles,
    expected_commit_value,
    shadow_finish_probability,
)
from repro.core.scc_ks import SCCkS
from repro.errors import ConfigurationError
from repro.values.distributions import DeterministicExecution, ExponentialExecution
from repro.values.value_function import ValueFunction
from tests.conftest import R, W, build_system, make_class
from repro.txn.spec import TransactionSpec


def _system_with(programs, values=None, deadlines=None, until=1.7):
    protocol = SCCkS(k=3)
    specs = []
    for i, program in enumerate(programs):
        value = values[i] if values else 1.0
        deadline = deadlines[i] if deadlines else 100.0
        specs.append(
            TransactionSpec.build(
                txn_id=i,
                arrival=0.0 if i > 0 else 0.0,
                steps=program,
                txn_class=make_class(num_steps=len(program), value=value),
                step_duration=1.0,
                deadline=deadline,
            )
        )
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.sim.run(until=until)
    return protocol, system


class TestShadowFinishProbability:
    def test_definition4_deterministic(self):
        dist = DeterministicExecution(4.0)
        # Shadow ran 1s; at wall time now+3 its total execution is 4.
        assert shadow_finish_probability(dist, elapsed=1.0, now=10.0, wall=13.0) == 1.0
        assert shadow_finish_probability(dist, elapsed=1.0, now=10.0, wall=12.0) == 0.0

    def test_wall_before_now_is_zero(self):
        dist = ExponentialExecution(1.0)
        assert shadow_finish_probability(dist, 0.0, now=5.0, wall=4.0) == 0.0

    def test_conditional_formula(self):
        import math

        dist = ExponentialExecution(1.0)
        # Memoryless: P[finish by now+1 | elapsed anything] = 1 - e^-1.
        p = shadow_finish_probability(dist, elapsed=7.0, now=0.0, wall=1.0)
        assert p == pytest.approx(1.0 - math.exp(-1.0))


class TestAdoptionProfiles:
    def test_no_conflicts_probability_one(self):
        protocol, _ = _system_with([[R(0), R(1)], [R(2), R(3)]])
        profiles = adoption_profiles(protocol, now=0.5)
        for profile in profiles.values():
            assert profile.p_optimistic == pytest.approx(1.0)
            assert profile.p_writer == {}

    def test_single_conflict_equal_values_splits_evenly(self):
        # T0 reads page 0 which T1 wrote: P_o = V0 / (V0 + V1*P_o_1) and
        # T1 has no incoming conflicts so P_o_1 = 1 -> P_o_0 = 0.5.
        protocol, _ = _system_with(
            [[R(5), R(0), R(6), R(7)], [W(0), R(8), R(9), R(10)]],
            until=2.5,
        )
        profiles = adoption_profiles(protocol, now=2.4)
        p0 = profiles[0]
        assert p0.p_optimistic == pytest.approx(0.5)
        assert p0.p_writer[1] == pytest.approx(0.5)
        assert p0.total() == pytest.approx(1.0)
        assert profiles[1].p_optimistic == pytest.approx(1.0)

    def test_higher_valued_writer_gets_more_mass(self):
        protocol, _ = _system_with(
            [[R(5), R(0), R(6), R(7)], [W(0), R(8), R(9), R(10)]],
            values=[1.0, 3.0],
            until=2.5,
        )
        profiles = adoption_profiles(protocol, now=2.4)
        assert profiles[0].p_writer[1] == pytest.approx(0.75)
        assert profiles[0].p_optimistic == pytest.approx(0.25)

    def test_exclude_removes_committer_from_denominators(self):
        protocol, _ = _system_with(
            [[R(5), R(0), R(6), R(7)], [W(0), R(8), R(9), R(10)]],
            until=2.5,
        )
        profiles = adoption_profiles(protocol, now=2.4, exclude=1)
        assert profiles[0].p_optimistic == pytest.approx(1.0)
        assert 1 not in profiles

    def test_mass_always_sums_to_one(self):
        protocol, _ = _system_with(
            [
                [R(5), R(0), R(1), R(7)],
                [W(0), R(8), R(9), R(10)],
                [W(1), R(11), R(12), R(13)],
            ],
            until=2.5,
        )
        for profile in adoption_profiles(protocol, now=2.4).values():
            assert profile.total() == pytest.approx(1.0)


class TestExpectedCommitValue:
    def test_finished_component_commits_next_tick(self):
        vf = ValueFunction(value=10.0, deadline=100.0, penalty_gradient=1.0)
        result = expected_commit_value(
            vf,
            DeterministicExecution(1.0),
            [ShadowComponent(probability=1.0, elapsed=None)],
            now=0.0,
            delta=0.5,
        )
        assert result == pytest.approx(10.0)

    def test_deterministic_component_lands_at_remaining_time(self):
        # 4s total, 1s done -> finishes 3s from now.  Deadline at 2s with
        # unit gradient: V(3) = 10 - 1 = 9 (tick grid aligned, delta=1).
        vf = ValueFunction(value=10.0, deadline=2.0, penalty_gradient=1.0)
        result = expected_commit_value(
            vf,
            DeterministicExecution(4.0),
            [ShadowComponent(probability=1.0, elapsed=1.0)],
            now=0.0,
            delta=1.0,
        )
        assert result == pytest.approx(9.0)

    def test_probability_weights_mix(self):
        vf = ValueFunction(value=10.0, deadline=100.0, penalty_gradient=1.0)
        components = [
            ShadowComponent(probability=0.3, elapsed=None),
            ShadowComponent(probability=0.7, elapsed=0.0),
        ]
        result = expected_commit_value(
            vf, DeterministicExecution(2.0), components, now=0.0, delta=1.0
        )
        # Both paths commit before the deadline: full value either way.
        assert result == pytest.approx(10.0)

    def test_mass_conserved_for_exponential(self):
        vf = ValueFunction(value=1.0, deadline=1000.0, penalty_gradient=0.0)
        result = expected_commit_value(
            vf,
            ExponentialExecution(1.0),
            [ShadowComponent(probability=1.0, elapsed=0.0)],
            now=0.0,
            delta=0.25,
            epsilon=0.001,
        )
        # Flat value function: E[V] must equal the value (mass sums to 1).
        assert result == pytest.approx(1.0, abs=1e-6)

    def test_zero_probability_component_ignored(self):
        vf = ValueFunction(value=5.0, deadline=10.0, penalty_gradient=1.0)
        result = expected_commit_value(
            vf,
            DeterministicExecution(1.0),
            [ShadowComponent(probability=0.0, elapsed=0.0)],
            now=0.0,
            delta=1.0,
        )
        assert result == 0.0

    def test_invalid_delta_rejected(self):
        vf = ValueFunction(value=5.0, deadline=10.0, penalty_gradient=1.0)
        with pytest.raises(ConfigurationError):
            expected_commit_value(vf, DeterministicExecution(1.0), [], 0.0, 0.0)
