"""Unit tests for shadow replacement policies."""

from repro.core.conflict_table import ConflictRecord
from repro.core.replacement import (
    DeadlineAwareReplacement,
    LatestBlockedFirstOut,
    ValueAwareReplacement,
)
from repro.core.scc_ks import SCCkS
from tests.conftest import R, W, build_system
from repro.txn.generator import fixed_workload
from tests.conftest import make_class


def records(*pairs):
    return [ConflictRecord(writer=w, pages={100 + w}, first_pos=p) for w, p in pairs]


def protocol_with_writers(deadlines_values):
    """An SCCkS protocol with active writer runtimes for policy lookups.

    deadlines_values: list of (deadline, value) per writer (txn ids 0..n-1).
    """
    from repro.txn.spec import TransactionSpec

    protocol = SCCkS(k=3)
    specs = [
        TransactionSpec.build(
            txn_id=i,
            arrival=0.0,
            steps=[W(i), R(10 + i)],
            txn_class=make_class(num_steps=2, value=value),
            step_duration=1.0,
            deadline=deadline,
        )
        for i, (deadline, value) in enumerate(deadlines_values)
    ]
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.sim.run(until=0.1)  # arrivals processed, nothing committed
    return protocol


def test_lbfo_orders_by_first_position():
    policy = LatestBlockedFirstOut()
    ordered = policy.order(None, records((5, 3), (6, 1), (7, 2)), None, 0.0)
    assert [r.writer for r in ordered] == [6, 7, 5]


def test_lbfo_ties_break_by_writer_id():
    policy = LatestBlockedFirstOut()
    ordered = policy.order(None, records((9, 1), (4, 1)), None, 0.0)
    assert [r.writer for r in ordered] == [4, 9]


def test_lbfo_select_respects_budget():
    policy = LatestBlockedFirstOut()
    recs = records((5, 3), (6, 1), (7, 2))
    assert [r.writer for r in policy.select(None, recs, 2, None, 0.0)] == [6, 7]
    assert [r.writer for r in policy.select(None, recs, None, None, 0.0)] == [6, 7, 5]
    assert policy.select(None, recs, 0, None, 0.0) == []


def test_deadline_aware_prefers_urgent_writers():
    protocol = protocol_with_writers([(9.0, 1.0), (3.0, 1.0), (6.0, 1.0)])
    policy = DeadlineAwareReplacement()
    ordered = policy.order(None, records((0, 1), (1, 1), (2, 1)), protocol, 0.0)
    assert [r.writer for r in ordered] == [1, 2, 0]


def test_value_aware_prefers_valuable_writers():
    protocol = protocol_with_writers([(9.0, 1.0), (9.0, 5.0), (9.0, 3.0)])
    policy = ValueAwareReplacement()
    ordered = policy.order(None, records((0, 1), (1, 1), (2, 1)), protocol, 0.0)
    assert [r.writer for r in ordered] == [1, 2, 0]


def test_policies_handle_departed_writers():
    protocol = protocol_with_writers([(9.0, 1.0)])
    policy = DeadlineAwareReplacement()
    ordered = policy.order(None, records((0, 2), (99, 1)), protocol, 0.0)
    # Unknown writer 99 sorts last for deadline policy (infinite deadline).
    assert [r.writer for r in ordered] == [0, 99]


def test_lbfo_order_matches_conflict_table_sort():
    """Pin the coupling SCCkS._desired_coverage's fast path relies on.

    ConflictTable.records() returns records sorted by (first_pos, writer)
    — exactly LBFO's order.  The SCC-kS coverage fast path skips LBFO's
    re-sort on that basis; if either side's key ever changes, this test
    must fail before the fast path silently diverges.
    """
    from repro.core.conflict_table import ConflictTable

    table = ConflictTable()
    # Deliberately adversarial insertion order: late positions first,
    # writer ids shuffled, one record's first_pos moved earlier by merge.
    for writer, page, pos in [(7, 3, 9), (2, 4, 1), (9, 5, 4), (2, 6, 5), (7, 7, 2)]:
        table.record(writer, page, pos)
    sorted_records = table.records()
    assert [(r.first_pos, r.writer) for r in sorted_records] == sorted(
        (r.first_pos, r.writer) for r in sorted_records
    )
    policy = LatestBlockedFirstOut()
    assert policy.order(None, sorted_records, None, 0.0) == sorted_records
