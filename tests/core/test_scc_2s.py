"""Scenario tests for SCC-2S, including the paper's Figure 2 vignettes.

Unit step time makes every schedule exact; see tests/conftest.py.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_2s import SCC2S
from repro.protocols.occ_bc import OCCBroadcastCommit
from tests.conftest import R, W, commit_order, commit_time_of, run_scenario


def test_no_conflicts_behaves_like_occ():
    system = run_scenario(
        SCC2S(),
        programs=[[R(0), W(1)], [R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert system.metrics.shadow_aborts == 0
    assert system.metrics.restarts == 0


def test_figure2a_undeveloped_conflict():
    # Figure 2(a): T2 reaches validation before T1 -> T2 commits untouched
    # and its shadow is simply discarded; T1 later commits too.
    system = run_scenario(
        SCC2S(),
        programs=[
            [W(0), R(4), R(5)],  # T1 writes x at t=1
            [R(6), R(0)],  # T2 reads x at t=2, validates before T1
        ],
    )
    assert commit_order(system) == [1, 0]
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert system.metrics.restarts == 0
    # The speculative shadow created for the (undeveloped) conflict was
    # aborted when its transaction committed from the optimistic shadow.
    assert system.metrics.shadow_aborts == 1
    # T2 committed the pre-T1 version of x: serialization T2 < T1.
    history = {t.txn_id: t for t in system.history}
    assert history[1].reads[0] == 0


def test_figure2b_developed_conflict_adopts_shadow():
    # Figure 2(b): T1 validates first; T2's optimistic shadow (which read
    # x) is aborted and the blocked shadow resumes from the conflict point
    # instead of restarting from scratch.
    # T1 = [W(x), R, R] commits at 3.  T2 = [R(3), R(x), R(4), R(5)]:
    # optimistic reads 3@1, x@2, 4@3 (killed at 3); the speculative shadow
    # forked at position 1 resumes at t=3: x@4, 4@5, 5@6 -> commit 6.
    system = run_scenario(
        SCC2S(),
        programs=[
            [W(0), R(1), R(2)],
            [R(3), R(0), R(4), R(5)],
        ],
    )
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert commit_time_of(system, 1) == pytest.approx(6.0)
    assert system.metrics.restarts == 0  # never restarted from scratch


def test_scc_beats_occ_bc_by_the_saved_prefix():
    programs = [
        [W(0), R(1), R(2)],
        [R(3), R(0), R(4), R(5)],
    ]
    occ_bc = run_scenario(OCCBroadcastCommit(), programs=[list(p) for p in programs])
    scc = run_scenario(SCC2S(), programs=[list(p) for p in programs])
    # OCC-BC restarts T2 from scratch at t=3: commits at 7.  SCC-2S saved
    # the one-step prefix before the conflict: commits at 6.
    assert commit_time_of(occ_bc, 1) == pytest.approx(7.0)
    assert commit_time_of(scc, 1) == pytest.approx(6.0)
    assert occ_bc.metrics.restarts == 1
    assert scc.metrics.restarts == 0


def test_conflict_at_position_zero_equals_restart():
    # When the conflicting read is the very first step there is no prefix
    # to save: SCC-2S and OCC-BC commit at the same time.
    programs = [
        [W(0), R(1), R(2)],
        [R(0), R(4), R(5), R(6)],
    ]
    occ_bc = run_scenario(OCCBroadcastCommit(), programs=[list(p) for p in programs])
    scc = run_scenario(SCC2S(), programs=[list(p) for p in programs])
    assert commit_time_of(occ_bc, 1) == pytest.approx(commit_time_of(scc, 1))


def test_write_after_read_conflict_forks_catch_up_shadow():
    # The writer's update arrives after the reader already read the page:
    # the Write Rule must create a from-scratch catch-up shadow.
    # T0 = [R(1), R(0), R(2), R(3)] reads page 0 at position 1 (t=2).
    # T1 = [R(4), R(5), W(0)] writes page 0 at t=3 and commits at t=3.
    # T0's optimistic (pos 3) dies; the catch-up shadow forked at t=3 from
    # scratch targets position 1 but is still at position 0 -> promoted
    # while running; resumes: R(1)@4, R(0)@5, R(2)@6, R(3)@7.
    system = run_scenario(
        SCC2S(),
        programs=[
            [R(1), R(0), R(2), R(3)],
            [R(4), R(5), W(0)],
        ],
    )
    assert commit_time_of(system, 1) == pytest.approx(3.0)
    assert commit_time_of(system, 0) == pytest.approx(7.0)
    assert system.metrics.restarts == 0
    assert check_serializable(system.history)


def test_serializable_under_heavy_contention():
    programs = [[W(i % 3), R((i + 1) % 3), R(3 + i)] for i in range(9)]
    system = run_scenario(
        SCC2S(),
        programs=programs,
        arrivals=[0.4 * i for i in range(9)],
        num_pages=16,
    )
    assert len(commit_order(system)) == 9
    assert check_serializable(system.history)


def test_promoted_shadow_reads_fresh_values():
    # After promotion the shadow re-reads the conflict page and must see
    # the committed writer's version (checked by the system at commit).
    system = run_scenario(
        SCC2S(),
        programs=[
            [W(0), R(1)],
            [R(2), R(0), R(3)],
        ],
    )
    assert check_serializable(system.history)
    history = {t.txn_id: t for t in system.history}
    assert history[1].reads[0] == 1  # read version installed by T0
