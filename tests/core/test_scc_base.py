"""Unit tests for SCC base machinery: queries and the invariant checker."""

import pytest

from repro.core.scc_ks import SCCkS
from repro.core.shadow import Shadow, ShadowMode
from repro.errors import InvariantViolation, ProtocolError
from repro.protocols.base import ExecutionState, ReadRecord
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, make_class


def mid_run_protocol(until=2.5):
    protocol = SCCkS(k=3)
    specs = fixed_workload(
        programs=[
            [R(5), R(0), R(6), R(7)],
            [W(0), R(8), R(9), R(10)],
        ],
        arrivals=[0.5, 0.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=32)
    system.load_workload(specs)
    system.sim.run(until=until)
    return protocol, system


def test_runtime_queries():
    protocol, system = mid_run_protocol()
    assert protocol.runtime_of(0) is not None
    assert protocol.runtime_of(99) is None
    assert {rt.txn_id for rt in protocol.runtimes()} == {0, 1}
    writer = protocol.runtime_of(1)
    readers = protocol.readers_of_writes(writer)
    assert [rt.txn_id for rt in readers] == [0]
    assert protocol.transaction_has_conflicts(writer)
    assert protocol.transaction_has_conflicts(protocol.runtime_of(0))
    system.sim.run()


def test_live_shadows_listing():
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    shadows = runtime.live_shadows()
    assert runtime.optimistic in shadows
    assert len(shadows) == 2  # optimistic + one speculative
    system.sim.run()


def test_invariant_checker_passes_mid_run():
    protocol, system = mid_run_protocol()
    protocol.check_invariants()
    system.sim.run()
    protocol.check_invariants()


def test_invariant_checker_catches_wrong_mode():
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    runtime.optimistic.mode = ShadowMode.SPECULATIVE
    with pytest.raises(InvariantViolation):
        protocol.check_invariants()


def test_invariant_checker_catches_dead_optimistic():
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    runtime.optimistic.state = ExecutionState.ABORTED
    with pytest.raises(InvariantViolation):
        protocol.check_invariants()


def test_overtaking_shadow_is_legal():
    # A speculative shadow transiently ahead of the optimistic shadow is
    # permitted (it happens when a blocked shadow is promoted while a
    # sibling is mid-service); the checker must NOT flag it.
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    shadow = next(iter(runtime.speculatives.values()))
    shadow.pos = runtime.optimistic.pos + 1
    protocol.check_invariants()
    shadow.pos = min(shadow.pos, runtime.optimistic.pos)  # restore sanity
    system.sim.run()


def test_invariant_checker_catches_exposed_waiter():
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    writer, shadow = next(iter(runtime.speculatives.items()))
    # Forge a read of the waited writer's page.
    page = next(iter(protocol.index.written_by(writer)))
    shadow.readset[page] = ReadRecord(position=0, version=0, time=0.0)
    with pytest.raises(InvariantViolation):
        protocol.check_invariants()


def test_invariant_checker_catches_stale_read():
    protocol, system = mid_run_protocol()
    runtime = protocol.runtime_of(0)
    page, record = next(iter(runtime.optimistic.readset.items()))
    runtime.optimistic.readset[page] = ReadRecord(
        position=record.position, version=record.version + 7, time=record.time
    )
    with pytest.raises(InvariantViolation):
        protocol.check_invariants()


def test_non_shadow_execution_rejected():
    from repro.protocols.base import Execution

    protocol, system = mid_run_protocol()
    spec = protocol.runtime_of(0).spec
    with pytest.raises(ProtocolError):
        protocol.on_finished(Execution(spec))


def test_commit_of_unfinished_transaction_rejected():
    protocol, system = mid_run_protocol()
    with pytest.raises(ProtocolError):
        protocol.commit_transaction(protocol.runtime_of(0))
