"""Tests for SCC-CB (conflict-based SCC: unlimited shadow budget)."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_cb import SCCCB
from repro.core.scc_ks import SCCkS
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, commit_time_of, make_class


def run(protocol, programs, arrivals=None, until=None):
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals or [0.0] * len(programs),
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    if until is None:
        system.run()
    else:
        system.sim.run(until=until)
    return system


def test_one_shadow_per_conflicting_transaction():
    protocol = SCCCB()
    system = run(
        protocol,
        programs=[
            [R(0), R(1), R(2), R(3), R(4)],
            [W(0), R(10), R(11), R(12), R(13)],
            [W(1), R(14), R(15), R(16), R(17)],
            [W(2), R(18), R(19), R(20), R(21)],
        ],
        arrivals=[0.5, 0.0, 0.0, 0.0],
        until=3.8,
    )
    runtime = protocol.runtime_of(0)
    # Conflicts with three writers -> three speculative shadows (no
    # budget cap), blocked at positions 0, 1, 2 respectively.
    assert set(runtime.speculatives) == {1, 2, 3}
    positions = sorted(s.pos for s in runtime.speculatives.values())
    assert positions == [0, 1, 2]
    protocol.check_invariants()
    system.sim.run()
    assert check_serializable(system.history)


def test_cb_commit_time_no_worse_than_small_k():
    programs = [
        [R(5), R(0), R(6), R(1), R(7)],
        [W(0), R(8), R(9), R(10), R(11), R(12)],
        [R(13), R(14), W(1), R(15), R(16), R(17)],
    ]
    cb = run(SCCCB(), [list(p) for p in programs])
    k2 = run(SCCkS(k=2), [list(p) for p in programs])
    assert commit_time_of(cb, 0) <= commit_time_of(k2, 0)
    assert cb.metrics.restarts == 0


def test_name():
    assert SCCCB().name == "SCC-CB"
