"""Scenario tests for SCC-DC (probabilistic deferred commit, §3.2)."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_2s import SCC2S
from repro.core.scc_dc import SCCDC, DCTermination
from repro.errors import ConfigurationError
from repro.txn.spec import TransactionSpec
from tests.conftest import R, W, build_system, commit_time_of, make_class


def run_value_scenario(protocol, deadlines, values, programs, alphas=None):
    specs = [
        TransactionSpec.build(
            txn_id=i,
            arrival=0.0,
            steps=programs[i],
            txn_class=make_class(
                num_steps=len(programs[i]),
                value=values[i],
                alpha_degrees=(alphas or [45.0] * len(programs))[i],
            ),
            step_duration=1.0,
            deadline=deadlines[i],
        )
        for i in range(len(programs))
    ]
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.run()
    return system


def test_commits_happen_on_the_tick_grid():
    # A conflict-free transaction finishing at t=2.0 must wait for the
    # next Δ-tick (Δ=0.3 -> 2.1) before committing: the paper's "special
    # system clock" semantics.
    system = run_value_scenario(
        SCCDC(period=0.3),
        deadlines=[10.0],
        values=[1.0],
        programs=[[R(0), R(1)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.1)


def test_figure10_deferment_with_probabilistic_rule():
    # The same Figure 10 scenario as the VW tests: SCC-DC's expected-value
    # comparison must also defer the cheap writer for the valuable reader.
    system = run_value_scenario(
        SCCDC(period=0.25),
        deadlines=[3.0, 4.5],
        values=[1.0, 10.0],
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11)],
        ],
    )
    assert commit_time_of(system, 1) <= 4.5  # the valuable reader is on time
    assert system.metrics.summary().deferred_commits >= 1
    assert system.metrics.restarts == 0
    history = {t.txn_id: t for t in system.history}
    assert history[1].reads[0] == 0  # serialized before the writer
    assert check_serializable(system.history)


def test_dc_beats_plain_scc_on_figure10_value():
    programs = [[R(8), W(0)], [R(0), R(9), R(10), R(11)]]
    plain = run_value_scenario(
        SCC2S(), [3.0, 4.5], [1.0, 10.0], [list(p) for p in programs]
    )
    dc = run_value_scenario(
        SCCDC(period=0.25), [3.0, 4.5], [1.0, 10.0], [list(p) for p in programs]
    )
    assert dc.metrics.summary().system_value > plain.metrics.summary().system_value


def test_steep_gradient_commits_at_last_free_tick():
    # A steep-gradient (tan 85° ≈ 11.4) finished writer defers only while
    # deferral is free — its value is flat until the deadline at t=3 —
    # and commits at the last tick before decay would bite, rather than
    # waiting until t=4 for the cheap reader (which a 45° writer would).
    system = run_value_scenario(
        SCCDC(period=0.25),
        deadlines=[3.0, 4.5],
        values=[10.0, 0.5],
        alphas=[85.0, 45.0],
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11)],
        ],
    )
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    # The writer banked its full value; the reader re-executes and is late.
    assert commit_time_of(system, 1) > 4.5
    assert check_serializable(system.history)


def test_drains_under_contention():
    programs = [[W(i % 3), R((i + 1) % 3), R(10 + i)] for i in range(8)]
    protocol = SCCDC(period=0.2)
    specs = [
        TransactionSpec.build(
            txn_id=i,
            arrival=0.3 * i,
            steps=programs[i],
            txn_class=make_class(num_steps=3),
            step_duration=1.0,
        )
        for i in range(8)
    ]
    system = build_system(protocol, num_pages=32)
    system.load_workload(specs)
    system.run()
    assert len(system.history) == 8
    assert check_serializable(system.history)


def test_parameters_validated():
    with pytest.raises(ConfigurationError):
        SCCDC(period=0.0)
    with pytest.raises(ConfigurationError):
        DCTermination(period=0.1, epsilon=0.0)
    with pytest.raises(ConfigurationError):
        DCTermination(period=0.1, epsilon=1.0)
