"""Scenario tests for SCC-kS: budgets, LBFO, and the five rules.

These exercise the paper's Figures 4-8 situations with exact schedules
(unit step time) and white-box inspection of the shadow sets.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_ks import SCCkS
from repro.core.shadow import ShadowMode
from repro.errors import ConfigurationError
from repro.protocols.base import ExecutionState
from tests.conftest import R, W, build_system, commit_time_of, run_scenario
from repro.txn.generator import fixed_workload
from tests.conftest import make_class


def drive(protocol, programs, until, arrivals=None, num_pages=64):
    """Run a scenario up to simulated time ``until`` and return the system."""
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals or [0.0] * len(programs),
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=num_pages)
    system.load_workload(specs)
    system.sim.run(until=until)
    return system


class TestStartAndReadRules:
    def test_start_rule_creates_single_optimistic_shadow(self):
        protocol = SCCkS(k=3)
        system = drive(protocol, [[R(0), R(1)]], until=0.5)
        runtime = protocol.runtime_of(0)
        assert runtime is not None
        assert runtime.optimistic.mode is ShadowMode.OPTIMISTIC
        assert runtime.speculatives == {}
        protocol.check_invariants()
        system.sim.run()

    def test_read_rule_forks_blocked_shadow_at_conflict_point(self):
        # T1's write of page 0 is recorded at t=1; T0 (arriving at 0.5) is
        # about to read page 0 at position 1 (t=1.5): the Read Rule forks a
        # shadow off the optimistic shadow, blocked at position 1 *before*
        # the exposing read.
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8), R(9), R(10)],
            ],
            arrivals=[0.5, 0.0],
            until=1.7,
        )
        runtime = protocol.runtime_of(0)
        assert list(runtime.speculatives) == [1]
        shadow = runtime.speculatives[1]
        assert shadow.mode is ShadowMode.SPECULATIVE
        assert shadow.state is ExecutionState.BLOCKED
        assert shadow.pos == 1
        assert shadow.forked_at == 1  # forked off the optimistic shadow
        assert not shadow.has_read(0)
        assert runtime.conflicts.get(1).first_pos == 1
        protocol.check_invariants()
        system.sim.run()
        assert check_serializable(system.history)

    def test_in_flight_write_detected_at_read_completion(self):
        # Synchronized arrivals: the write of page 0 is recorded at t=1
        # while T0's read of page 0 is already in flight (it passed its
        # before_step check at t=1 first).  The completion-time half of
        # the Read Rule must still record the conflict and fork a catch-up
        # shadow, since no donor precedes the exposing read.
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8), R(9), R(10)],
            ],
            until=2.5,
        )
        runtime = protocol.runtime_of(0)
        assert list(runtime.speculatives) == [1]
        assert runtime.speculatives[1].forked_at == 0  # from scratch
        assert runtime.conflicts.get(1).first_pos == 1
        system.sim.run()
        assert check_serializable(system.history)
        assert system.metrics.restarts == 0

    def test_budget_k1_never_speculates(self):
        protocol = SCCkS(k=1)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8), R(9), R(10)],
            ],
            arrivals=[0.5, 0.0],
            until=1.7,
        )
        runtime = protocol.runtime_of(0)
        assert runtime.speculatives == {}
        assert len(runtime.conflicts) == 1  # conflict known, not covered
        system.sim.run()
        # Without a shadow the materialized conflict forces a full restart
        # (OCC-BC behaviour): T1 commits at 4, T0 reruns 4 steps -> 8.
        assert system.metrics.restarts == 1
        assert commit_time_of(system, 0) == pytest.approx(8.0)


class TestWriteRule:
    def test_write_rule_forks_catch_up_from_scratch(self):
        # T0 read page 0 at position 1 before T1 wrote it (write-after-read,
        # the paper's Figure 4 shape): no donor exists at/before position 1
        # (the optimistic shadow is past it), so a from-scratch catch-up
        # shadow is created; it replays position 0 then blocks at 1.
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7), R(8)],
                [R(9), R(10), W(0), R(11), R(12)],
            ],
            until=3.2,
        )
        runtime = protocol.runtime_of(0)
        shadow = runtime.speculatives[1]
        assert shadow.forked_at == 0  # from scratch
        system.sim.run(until=4.5)
        # By t=4.2 the catch-up shadow replayed step 0 and blocked at 1.
        assert shadow.state is ExecutionState.BLOCKED
        assert shadow.pos == 1
        protocol.check_invariants()
        system.sim.run()
        assert check_serializable(system.history)

    def test_write_rule_forks_off_earlier_blocked_shadow(self):
        # Figure 4: a new conflict at position 2 can fork off the shadow
        # blocked at position 1 (instead of re-executing from scratch).
        protocol = SCCkS(k=4)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(1), R(6), R(7)],  # T0 reads pages 0 and 1
                [W(0), R(8), R(9), R(10), R(11)],  # writes 0 immediately
                [R(12), R(13), R(14), W(1), R(15)],  # writes 1 at t=4
            ],
            until=4.2,
        )
        runtime = protocol.runtime_of(0)
        early = runtime.speculatives[1]  # blocked at position 1
        late = runtime.speculatives[2]  # conflict on page 1 at position 2
        assert early.pos == 1
        # The late shadow forked off the early one (position 1), not from
        # scratch (position 0) and not off the exposed optimistic shadow.
        assert late.forked_at == 1
        protocol.check_invariants()
        system.sim.run()
        assert check_serializable(system.history)

    def test_figure5_same_pair_earlier_conflict_replaces_shadow(self):
        # T1 writes page 2 (conflict at T0's position 2), then writes page
        # 0 (position 0): the old shadow read page 0, so it is invalid and
        # must be replaced by one blocked at position 0 (paper Figure 5).
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(0), R(1), R(2), R(3), R(4)],
                [R(8), W(2), R(9), W(0), R(10)],
            ],
            arrivals=[0.5, 0.0],
            until=2.8,
        )
        runtime = protocol.runtime_of(0)
        first_shadow = runtime.speculatives[1]
        assert first_shadow.pos <= 2
        assert first_shadow.has_read(0)  # exposed to T1's *later* write
        system.sim.run(until=4.2)  # T1's W(0) lands at t=4
        replacement = protocol.runtime_of(0).speculatives[1]
        assert replacement is not first_shadow
        assert first_shadow.state is ExecutionState.ABORTED
        assert runtime.conflicts.get(1).first_pos == 0
        system.sim.run()
        assert check_serializable(system.history)


class TestLBFOReplacement:
    def test_figure6_new_earliest_conflict_evicts_latest_blocked(self):
        # Budget of one speculative shadow (k=2).  A conflict at position 2
        # is covered first; a new conflict at position 0 (different writer)
        # must take the slot (LBFO: the latest-blocked shadow is dropped).
        protocol = SCCkS(k=2)
        system = drive(
            protocol,
            [
                [R(0), R(1), R(2), R(3), R(4)],
                [W(2), R(9), R(10), R(11), R(12)],  # conflict at pos 2 (t=1)
                [R(13), R(14), W(0), R(15), R(16)],  # conflict at pos 0 (t=3)
            ],
            until=3.5,
        )
        runtime = protocol.runtime_of(0)
        assert list(runtime.speculatives) == [2]  # writer T2 covered now
        assert runtime.speculatives[2].pos == 0
        assert len(runtime.conflicts) == 2
        protocol.check_invariants()
        system.sim.run()
        assert check_serializable(system.history)


class TestCommitRule:
    def test_case1_waiting_shadow_promoted(self):
        # The shadow speculating on the committer is promoted and resumes
        # from its blocking point (Figure 7).  T1 commits at t=3 having
        # written page 0; T0's optimistic shadow read page 0 at t=2.5 and
        # dies; the waiting shadow (blocked at position 1 since t=1.5)
        # resumes: reads at 4, 5, 6 -> commit 6 (restart would be 7).
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8), R(9)],
            ],
            arrivals=[0.5, 0.0],
            until=10.0,
        )
        system.sim.run()
        assert commit_time_of(system, 1) == pytest.approx(3.0)
        assert commit_time_of(system, 0) == pytest.approx(6.0)
        assert system.metrics.restarts == 0

    def test_committer_without_exposure_leaves_reader_untouched(self):
        # T1 commits while T0's read of the conflict page is still in
        # flight: T0's optimistic shadow never read the stale version, so
        # it survives and simply reads the freshly committed value; the
        # now-pointless waiting shadow is discarded.
        protocol = SCCkS(k=3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8)],
            ],
            arrivals=[0.5, 0.0],
            until=10.0,
        )
        system.sim.run()
        assert commit_time_of(system, 1) == pytest.approx(2.0)
        # T0 proceeds uninterrupted: arrival 0.5 + 4 steps = 4.5.
        assert commit_time_of(system, 0) == pytest.approx(4.5)
        assert system.metrics.restarts == 0
        history = {t.txn_id: t for t in system.history}
        assert history[0].reads[0] == 1  # saw T1's committed write

    def test_case2_latest_blocked_survivor_promoted(self):
        # Figure 8: the materialized conflict was not covered (budget), so
        # the latest-blocked surviving shadow is adopted even though it
        # speculated on a different committer.
        protocol = SCCkS(k=2)
        system = drive(
            protocol,
            [
                # T0 reads page 0 (pos 1, covered) and page 1 (pos 3, not
                # covered: budget is one shadow, LBFO keeps pos 1).
                [R(5), R(0), R(6), R(1), R(7)],
                [W(0), R(8), R(9), R(10), R(11), R(12), R(13)],
                [R(14), R(15), W(1), R(16)],  # commits at t=4
            ],
            until=3.5,
        )
        runtime = protocol.runtime_of(0)
        assert list(runtime.speculatives) == [1]
        shadow = runtime.speculatives[1]
        assert shadow.pos == 1
        system.sim.run()
        # T2 commits at 4.  T0's optimistic read page 1 at pos 3 -> dead.
        # Survivor: the T1-waiting shadow at pos 1 is promoted (suboptimal
        # but best available); it resumes reading page 0... which T1 still
        # has uncommitted writes for, so a fresh shadow re-blocks there.
        assert check_serializable(system.history)
        assert len(system.history) == 3
        assert system.metrics.restarts == 0

    def test_exposed_speculative_shadows_killed_with_optimistic(self):
        # Figure 7's T3-style shadow: a speculative shadow that read the
        # committer's page (blocked later for a different writer) dies too.
        protocol = SCCkS(k=4)
        system = drive(
            protocol,
            [
                [R(0), R(1), R(5), R(6)],
                [R(9), W(0), R(10), R(11), R(12)],  # conflict at pos 0
                [R(13), R(14), W(1), R(15), R(16)],  # conflict at pos 1
            ],
            arrivals=[1.0, 0.0, 0.0],
            until=4.5,
        )
        runtime = protocol.runtime_of(0)
        assert set(runtime.speculatives) == {1, 2}
        # The shadow waiting on T2 forked off the T1-waiting shadow and
        # replayed the read of page 0 (exposing itself to T1, which its
        # speculated order permits) before blocking at position 1.
        shadow_for_t2 = runtime.speculatives[2]
        assert shadow_for_t2.has_read(0)
        system.sim.run(until=5.2)  # T1 commits at t=5
        assert shadow_for_t2.state is ExecutionState.ABORTED
        system.sim.run()
        assert check_serializable(system.history)
        assert system.metrics.restarts == 0

    def test_no_survivor_restarts_from_scratch(self):
        protocol = SCCkS(k=1)  # no speculation at all
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8)],
            ],
            until=10.0,
        )
        system.sim.run()
        assert system.metrics.restarts == 1
        # Full restart at t=2: 4 steps -> commit 6 (vs 5 with a shadow).
        assert commit_time_of(system, 0) == pytest.approx(6.0)


class TestConfiguration:
    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            SCCkS(k=0)

    def test_per_transaction_budget(self):
        protocol = SCCkS(k=None, k_for=lambda spec: 1 if spec.txn_id == 0 else 3)
        system = drive(
            protocol,
            [
                [R(5), R(0), R(6), R(7)],
                [R(5), R(0), R(6), R(7)],
                [W(0), R(8), R(9), R(10), R(11)],
            ],
            arrivals=[0.5, 0.5, 0.0],
            until=1.7,
        )
        # Identical transactions, different budgets: T0 (k=1) covers no
        # conflicts, T1 (k=3) shadows its conflict with the writer T2.
        assert protocol.runtime_of(0).speculatives == {}
        assert list(protocol.runtime_of(1).speculatives) == [2]
        system.sim.run()

    def test_name_reflects_k(self):
        assert SCCkS(k=2).name == "SCC-2S"
        assert SCCkS(k=5).name == "SCC-5S"
        assert SCCkS(k=None).name == "SCC-kS"

    def test_more_shadows_never_hurt_timeliness(self):
        programs = [
            [R(5), R(0), R(6), R(1), R(7)],
            [W(0), R(8), R(9), R(10), R(11), R(12)],
            [R(13), R(14), W(1), R(15), R(16), R(17)],
        ]
        times = {}
        for k in (1, 2, 3):
            system = run_scenario(SCCkS(k=k), programs=[list(p) for p in programs])
            times[k] = commit_time_of(system, 0)
        assert times[1] >= times[2] >= times[3]
