"""Scenario tests for SCC-VW (voted waiting, paper §3.3 and Figure 10)."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_2s import SCC2S
from repro.core.scc_vw import SCCVW, VWTermination
from repro.txn.generator import fixed_workload
from repro.txn.spec import TransactionSpec
from tests.conftest import R, W, build_system, commit_time_of, make_class


def run_value_scenario(
    protocol, deadlines, values, programs, arrivals=None, alphas=None
):
    specs = [
        TransactionSpec.build(
            txn_id=i,
            arrival=(arrivals or [0.0] * len(programs))[i],
            steps=programs[i],
            txn_class=make_class(
                num_steps=len(programs[i]),
                value=values[i],
                alpha_degrees=(alphas or [45.0] * len(programs))[i],
            ),
            step_duration=1.0,
            deadline=deadlines[i],
        )
        for i in range(len(programs))
    ]
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.run()
    return system


FIG10_PROGRAMS = [
    [R(8), W(0)],  # T1: writes x, finishes first, low value
    [R(0), R(9), R(10), R(11)],  # T2: read x early, high value, deadline 4.5
]
FIG10_DEADLINES = [3.0, 4.5]
FIG10_VALUES = [1.0, 10.0]


def test_figure10b_deferment_saves_the_valuable_transaction():
    system = run_value_scenario(
        SCCVW(period=0.25), FIG10_DEADLINES, FIG10_VALUES, FIG10_PROGRAMS
    )
    # T1's commit is deferred (the weighted vote favours T2); T2 commits
    # on time at t=4 having read the pre-T1 version of x, then T1 commits.
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert commit_time_of(system, 0) == pytest.approx(4.0)
    assert system.metrics.restarts == 0
    assert system.metrics.summary().deferred_commits == 1
    history = {t.txn_id: t for t in system.history}
    assert history[1].reads[0] == 0  # serialized before the writer
    assert check_serializable(system.history)


def test_figure10a_immediate_commit_costs_value():
    scc2s = run_value_scenario(
        SCC2S(), FIG10_DEADLINES, FIG10_VALUES, list(map(list, FIG10_PROGRAMS))
    )
    vw = run_value_scenario(
        SCCVW(period=0.25), FIG10_DEADLINES, FIG10_VALUES,
        list(map(list, FIG10_PROGRAMS)),
    )
    # Under SCC-2S, T1 commits at 2 and T2 must re-execute from its shadow:
    # it misses its deadline; SCC-VW's deferment earns more System Value.
    assert commit_time_of(scc2s, 1) > FIG10_DEADLINES[1]
    assert commit_time_of(vw, 1) <= FIG10_DEADLINES[1]
    assert (
        vw.metrics.summary().system_value > scc2s.metrics.summary().system_value
    )


def test_votes_flip_when_finished_transaction_is_the_valuable_one():
    # Reverse the stakes: the finished writer is precious with a *steep*
    # penalty gradient (tan α = 5), the conflicting reader is cheap.
    # Deferring to t=4 would cost the writer 5 value units to save the
    # reader 1.5 -> the weighted vote commits immediately; the reader
    # falls back to its blocked shadow and finishes late.
    system = run_value_scenario(
        SCCVW(period=0.25),
        deadlines=[3.0, 4.5],
        values=[10.0, 0.5],
        alphas=[78.69, 45.0],  # tan(78.69°) ≈ 5.0
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11)],
        ],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) > 4.5
    assert check_serializable(system.history)


def test_gentle_gradient_prefers_deferral_even_for_valuable_writer():
    # Same shape but a 45° gradient: losing 1 unit by deferring two
    # seconds is cheaper than costing the reader 1.5 -> defer.
    system = run_value_scenario(
        SCCVW(period=0.25),
        deadlines=[3.0, 4.5],
        values=[10.0, 0.5],
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11)],
        ],
    )
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert commit_time_of(system, 0) == pytest.approx(4.0)
    assert check_serializable(system.history)


def test_no_conflicts_commits_immediately():
    system = run_value_scenario(
        SCCVW(period=0.25),
        deadlines=[10.0, 10.0],
        values=[1.0, 1.0],
        programs=[[R(0), R(1)], [R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert system.metrics.summary().deferred_commits == 0


def test_mutually_finished_transactions_drain():
    # Both finish and conflict with each other: neither has an *executing*
    # partner, so both commit (EDF order) without livelock.
    system = run_value_scenario(
        SCCVW(period=0.25),
        deadlines=[5.0, 6.0],
        values=[1.0, 1.0],
        programs=[
            [R(8), W(0), R(1)],
            [R(0), R(9), W(2)],
        ],
    )
    assert len(system.history) == 2
    assert check_serializable(system.history)


def test_tardy_voters_lose_their_weight():
    # A voter past its break-even point has weight 0; with all weights
    # zero the finished transaction commits rather than waiting for
    # worthless work.
    system = run_value_scenario(
        SCCVW(period=0.25),
        deadlines=[30.0, 0.5],  # T2 hopelessly late from the start
        values=[1.0, 1.0],
        programs=[
            [R(8), W(0)],
            [R(0), R(9), R(10), R(11)],
        ],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert check_serializable(system.history)


def test_threshold_validation():
    with pytest.raises(ValueError):
        VWTermination(period=0.1, commit_threshold=1.0)
    with pytest.raises(ValueError):
        SCCVW(commit_threshold=-0.1)
