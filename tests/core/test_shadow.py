"""Unit tests for SCC shadows."""

from repro.core.shadow import Shadow, ShadowMode
from repro.protocols.base import ExecutionState, ReadRecord
from repro.txn.spec import TransactionSpec
from tests.conftest import R, W, make_class


def spec(steps=None):
    steps = steps or [R(0), W(1), R(2)]
    return TransactionSpec.build(
        txn_id=1,
        arrival=0.0,
        steps=steps,
        txn_class=make_class(num_steps=len(steps)),
        step_duration=1.0,
    )


def test_fork_copies_state_instantaneously():
    parent = Shadow(spec(), ShadowMode.OPTIMISTIC)
    parent.pos = 2
    parent.readset = {0: ReadRecord(0, 0, 1.0), 1: ReadRecord(1, 0, 2.0)}
    parent.writeset = {1: 1}
    parent.work = 2.0
    child = parent.fork(ShadowMode.SPECULATIVE, frozenset({9}))
    assert child.pos == 2
    assert child.forked_at == 2
    assert child.readset == parent.readset
    assert child.readset is not parent.readset
    assert child.writeset == parent.writeset
    assert child.work == 0.0  # fork itself costs nothing
    assert child.wait_for == frozenset({9})
    assert child.state is ExecutionState.READY
    assert child.serial != parent.serial


def test_fork_is_independent_after_copy():
    parent = Shadow(spec(), ShadowMode.OPTIMISTIC)
    child = parent.fork(ShadowMode.SPECULATIVE, frozenset({2}))
    parent.readset[5] = ReadRecord(0, 0, 0.0)
    assert 5 not in child.readset


def test_promote_clears_speculation():
    shadow = Shadow(spec(), ShadowMode.SPECULATIVE, frozenset({3, 4}))
    assert shadow.waits_on(3)
    shadow.promote()
    assert shadow.mode is ShadowMode.OPTIMISTIC
    assert shadow.wait_for == frozenset()
    assert not shadow.waits_on(3)


def test_has_read_any():
    shadow = Shadow(spec(), ShadowMode.OPTIMISTIC)
    shadow.readset = {0: ReadRecord(0, 0, 0.0), 7: ReadRecord(1, 0, 0.0)}
    assert shadow.has_read_any({7, 9})
    assert not shadow.has_read_any({8, 9})
    assert not shadow.has_read_any(set())


def test_alive_and_done_flags():
    shadow = Shadow(spec([R(0)]), ShadowMode.OPTIMISTIC)
    assert shadow.alive
    assert not shadow.done
    shadow.pos = 1
    assert shadow.done
    shadow.state = ExecutionState.ABORTED
    assert not shadow.alive
