"""Tests for the analytic SCC-OB/SCC-CB shadow-count model (Figure 3 / §2)."""

import pytest

from repro.core.shadow_counts import (
    figure3_table,
    scc_cb_max_concurrent_shadows,
    scc_cb_total_shadows,
    scc_ob_shadows,
    scc_ob_shadows_enumerated,
)
from repro.errors import ConfigurationError


def test_paper_figure3_values_n3():
    # Figure 3: five shadows for T3 under SCC-OB, three under SCC-CB.
    assert scc_ob_shadows(3) == 5
    assert scc_cb_max_concurrent_shadows(3) == 3
    assert scc_cb_total_shadows(3) == 3


def test_small_values():
    assert scc_ob_shadows(1) == 1  # just the optimistic shadow
    assert scc_ob_shadows(2) == 2
    assert scc_cb_total_shadows(1) == 0
    assert scc_cb_total_shadows(2) == 1


@pytest.mark.parametrize("n", range(1, 9))
def test_formula_matches_enumeration(n):
    assert scc_ob_shadows(n) == scc_ob_shadows_enumerated(n)


def test_factorial_growth_vs_quadratic():
    # The paper's point: O((n-1)!) vs n(n-1)/2.
    for n in range(4, 10):
        assert scc_ob_shadows(n) > scc_cb_total_shadows(n)
    # Growth ratio explodes for SCC-OB but stays modest for SCC-CB.
    assert scc_ob_shadows(9) / scc_ob_shadows(8) > 7
    assert scc_cb_total_shadows(9) / scc_cb_total_shadows(8) < 1.3


def test_figure3_table_shape():
    rows = figure3_table(max_n=5)
    assert len(rows) == 5
    assert rows[2] == (3, 5, 3, 3)


@pytest.mark.parametrize("func", [
    scc_ob_shadows,
    scc_ob_shadows_enumerated,
    scc_cb_max_concurrent_shadows,
    scc_cb_total_shadows,
])
def test_invalid_n_rejected(func):
    with pytest.raises(ConfigurationError):
        func(0)


def test_figure3_table_invalid():
    with pytest.raises(ConfigurationError):
        figure3_table(0)
