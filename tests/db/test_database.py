"""Unit tests for the versioned page database."""

import pytest

from repro.db.database import Database
from repro.errors import ConfigurationError


def test_initial_state():
    db = Database(4)
    for page in range(4):
        value, version = db.read(page)
        assert value == 0
        assert version == 0
        assert db.page(page).last_writer is None


def test_install_bumps_versions_and_values():
    db = Database(4)
    db.install({0: 42, 2: 99}, writer=7)
    assert db.read(0) == (42, 1)
    assert db.read(1) == (0, 0)
    assert db.read(2) == (99, 1)
    assert db.page(0).last_writer == 7
    assert db.installs == 1


def test_sequential_installs_accumulate_versions():
    db = Database(2)
    db.install({0: 1}, writer=1)
    db.install({0: 2}, writer=2)
    db.install({0: 3}, writer=3)
    assert db.read(0) == (3, 3)
    assert db.installs == 3


def test_empty_install_is_noop():
    db = Database(2)
    db.install({}, writer=1)
    assert db.installs == 0
    assert db.read(0) == (0, 0)


def test_out_of_range_page_rejected():
    db = Database(2)
    with pytest.raises(KeyError):
        db.read(2)
    with pytest.raises(KeyError):
        db.read(-1)


def test_zero_pages_rejected():
    with pytest.raises(ConfigurationError):
        Database(0)


def test_versions_of_snapshot():
    db = Database(4)
    db.install({1: 5, 3: 6}, writer=1)
    assert db.versions_of([0, 1, 3]) == {0: 0, 1: 1, 3: 1}
