"""Tests for the distributed sweep executor under fault-free conditions.

Fault injection (worker kills, dropped leases, corrupted shards) lives
in ``tests/distributed/test_fault_injection.py``; here we pin the happy
path: registry wiring, constructor validation, bit-identical reassembly
vs the serial executor, store persistence + resume, and the worker
lifecycle events on the telemetry bus.
"""

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import baseline_config
from repro.experiments.distributed import DistributedSweepExecutor
from repro.experiments.parallel import available_executors, make_executor
from repro.experiments.runner import build_cells, run_sweep
from repro.results import open_store

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="distributed executor tests need the fork start method",
)

SMALL = baseline_config(
    num_transactions=80,
    warmup_commits=8,
    replications=2,
    arrival_rates=(40.0, 90.0),
    check_serializability=False,
)
PROTOCOLS = ["scc-2s", "occ-bc"]

# Tight timings so lease machinery is exercised without slowing the test.
FAST = dict(lease_seconds=5.0, poll_seconds=0.01)


# ----------------------------------------------------------------------
# construction / registry
# ----------------------------------------------------------------------


def test_distributed_is_registered():
    assert available_executors() == ("distributed", "process", "serial")
    executor = make_executor("distributed", workers=2)
    assert isinstance(executor, DistributedSweepExecutor)
    assert executor.workers == 2


def test_worker_count_validation():
    with pytest.raises(ConfigurationError):
        DistributedSweepExecutor(workers=0)
    with pytest.raises(ConfigurationError):
        DistributedSweepExecutor(workers=-2)


def test_chunk_size_is_rejected():
    # The board hands out single cells; chunking would only widen the
    # loss window on a crash.
    with pytest.raises(ConfigurationError, match="chunk_size"):
        DistributedSweepExecutor(workers=2, chunk_size=4)
    with pytest.raises(ConfigurationError):
        make_executor("distributed", workers=2, chunk_size=4)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(lease_seconds=0.0),
        dict(lease_seconds=-1.0),
        dict(max_attempts=0),
        dict(backoff_seconds=-0.1),
        dict(poll_seconds=0.0),
    ],
)
def test_timing_knob_validation(kwargs):
    with pytest.raises(ConfigurationError):
        DistributedSweepExecutor(workers=1, **kwargs)


def test_empty_cell_list_is_a_noop():
    executor = DistributedSweepExecutor(workers=2)
    assert executor.run([], lambda cell: None) == []


# ----------------------------------------------------------------------
# bit-identical reassembly
# ----------------------------------------------------------------------


@needs_fork
def test_distributed_matches_serial_bit_for_bit():
    serial = run_sweep(PROTOCOLS, SMALL, executor="serial")
    executor = DistributedSweepExecutor(workers=2, **FAST)
    distributed = run_sweep(PROTOCOLS, SMALL, executor=executor)
    assert serial.keys() == distributed.keys()
    for name in serial:
        # RunSummary is a plain dataclass: == is field-exact, no tolerance.
        assert serial[name].replications == distributed[name].replications


@needs_fork
def test_outcomes_come_back_in_cell_order():
    cells = build_cells(["P", "Q"], [10.0, 20.0], 2)
    executor = DistributedSweepExecutor(workers=3, **FAST)
    outcomes = executor.run(cells, lambda cell: cell.arrival_rate * 100)
    assert [outcome.cell.index for outcome in outcomes] == [c.index for c in cells]
    assert all(outcome.ok for outcome in outcomes)


@needs_fork
def test_on_outcome_fires_once_per_cell():
    cells = build_cells(["P"], [10.0, 20.0, 30.0], 1)
    seen = []
    executor = DistributedSweepExecutor(workers=2, **FAST)
    executor.run(
        cells,
        lambda cell: cell.arrival_rate,
        on_outcome=lambda outcome: seen.append(outcome.cell.index),
    )
    assert sorted(seen) == [cell.index for cell in cells]


@needs_fork
def test_more_workers_than_cells_is_fine():
    cells = build_cells(["P"], [10.0], 1)
    executor = DistributedSweepExecutor(workers=8, **FAST)
    outcomes = executor.run(cells, lambda cell: 42)
    assert len(outcomes) == 1 and outcomes[0].ok


# ----------------------------------------------------------------------
# store persistence and resume
# ----------------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_store_backed_run_persists_and_resumes(tmp_path, backend):
    path = tmp_path / "runs"
    first = run_sweep(
        PROTOCOLS,
        SMALL,
        executor=DistributedSweepExecutor(workers=2, **FAST),
        store=path,
        store_backend=backend,
    )
    store = open_store(path, backend=backend)
    assert store.backend == backend
    assert len(store) == len(build_cells(PROTOCOLS, SMALL.arrival_rates, 2))
    store.close()
    # Second run: every cell is already in the store, so the resume
    # never has to spawn a host — and returns identical results.
    resumed = run_sweep(
        PROTOCOLS,
        SMALL,
        executor=DistributedSweepExecutor(workers=2, **FAST),
        store=path,
        store_backend=backend,
    )
    for name in first:
        assert first[name].replications == resumed[name].replications


# ----------------------------------------------------------------------
# lifecycle events on the telemetry bus
# ----------------------------------------------------------------------


@needs_fork
def test_worker_lifecycle_events_reach_the_bus():
    events = []
    run_sweep(
        ["scc-2s"],
        SMALL,
        executor=DistributedSweepExecutor(workers=2, **FAST),
        on_event=events.append,
    )
    kinds = [event.kind for event in events]
    assert kinds.count("worker_started") == 2
    assert kinds.count("worker_stopped") == 2
    assert "worker_lost" not in kinds
    started = [e for e in events if e.kind == "worker_started"]
    assert {e.payload["worker"] for e in started} == {"host-0", "host-1"}
    # The sweep events proper still flow alongside the lifecycle ones.
    cells = build_cells(["SCC-2S"], SMALL.arrival_rates, 2)
    assert kinds.count("cell_outcome") == len(cells)
