"""Fault-injection harness for the distributed executor.

Each test wounds the run somewhere specific — a host hard-killed
mid-cell, a lease silently dropped, a shard line corrupted after the
board said "done" — and asserts the same recovery contract: the sweep
still completes, retries stay within ``max_attempts``, and the results
are bit-identical to a cold serial run.

The injection seams are the ones the executor exposes on purpose:
``fault_hook(cell, attempt)`` runs in the worker right after a claim,
and a caller-supplied ``workdir`` lets a test pre-seed board/shard state
before the executor ever spawns a host.
"""

import multiprocessing
import os
import time

import pytest

from repro.errors import SweepExecutionError
from repro.experiments.config import baseline_config
from repro.experiments.distributed import DistributedSweepExecutor, JobBoard
from repro.experiments.runner import build_cells, run_sweep

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection tests need the fork start method",
)

SMALL = baseline_config(
    num_transactions=60,
    warmup_commits=6,
    replications=2,
    arrival_rates=(40.0, 90.0),
    check_serializability=False,
)
PROTOCOLS = ["scc-2s", "occ-bc"]


def _kill_once(marker_path):
    """A hook that hard-kills the first host to claim anything."""

    def hook(cell, attempt):
        try:
            fd = os.open(marker_path, os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return  # somebody already died for the cause
        os.close(fd)
        os._exit(13)  # SIGKILL-style: no cleanup, no board updates

    return hook


def test_hard_killed_worker_is_bit_identical_to_serial(tmp_path):
    serial = run_sweep(PROTOCOLS, SMALL, executor="serial")
    events = []
    executor = DistributedSweepExecutor(
        workers=2,
        lease_seconds=0.4,
        poll_seconds=0.01,
        max_attempts=3,
        fault_hook=_kill_once(str(tmp_path / "killed")),
    )
    survived = run_sweep(PROTOCOLS, SMALL, executor=executor, on_event=events.append)
    for name in serial:
        assert serial[name].replications == survived[name].replications
    kinds = [event.kind for event in events]
    assert kinds.count("worker_lost") == 1
    assert kinds.count("cell_retried") >= 1
    # The dead host was replaced: more starts than the configured two.
    assert kinds.count("worker_started") == 3
    lost = next(e for e in events if e.kind == "worker_lost")
    assert lost.payload["exitcode"] == 13
    retried = next(e for e in events if e.kind == "cell_retried")
    assert retried.payload["attempts"] == 1


def test_dropped_lease_is_reclaimed_by_another_host(tmp_path):
    # The first host to claim wedges (no heartbeat) long enough for its
    # lease to lapse; the cell must be handed to a second host.
    marker = str(tmp_path / "wedged")

    def wedge_once(cell, attempt):
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return
        os.close(fd)
        time.sleep(0.6)  # >> lease_seconds: the lease drops silently

    events = []
    executor = DistributedSweepExecutor(
        workers=2,
        lease_seconds=0.15,
        poll_seconds=0.01,
        max_attempts=3,
        fault_hook=wedge_once,
    )
    executor.lifecycle_hook = lambda kind, payload: events.append((kind, payload))
    cells = build_cells(["P"], [10.0, 20.0, 30.0], 1)
    outcomes = executor.run(cells, lambda cell: cell.arrival_rate * 2)
    assert [outcome.summary for outcome in outcomes] == [20.0, 40.0, 60.0]
    assert all(outcome.ok for outcome in outcomes)
    retried = [payload for kind, payload in events if kind == "cell_retried"]
    assert len(retried) == 1
    assert retried[0]["attempts"] == 1  # reclaimed as attempt 2
    # No host died: the wedged worker woke up and kept serving.
    assert not any(kind == "worker_lost" for kind, _ in events)


def test_retries_are_bounded_and_surface_as_worker_lost(tmp_path):
    # Every claim of cell 0 dies: the retry budget must run out and
    # produce an error outcome instead of looping forever.
    def kill_cell_zero(cell, attempt):
        if cell.index == 0:
            os._exit(13)

    events = []
    executor = DistributedSweepExecutor(
        workers=1,
        lease_seconds=0.15,
        poll_seconds=0.01,
        max_attempts=2,
        fault_hook=kill_cell_zero,
    )
    executor.lifecycle_hook = lambda kind, payload: events.append((kind, payload))
    cells = build_cells(["P"], [10.0, 20.0], 1)
    outcomes = executor.run(cells, lambda cell: cell.arrival_rate)
    assert not outcomes[0].ok
    assert outcomes[0].error.exc_type == "WorkerLost"
    assert "2 time(s)" in outcomes[0].error.message
    assert outcomes[1].ok and outcomes[1].summary == 20.0
    # Exactly max_attempts claims happened: one initial + one retry.
    retried = [payload for kind, payload in events if kind == "cell_retried"]
    assert len(retried) == 1
    assert len([k for k, _ in events if k == "worker_lost"]) == 2


def test_run_sweep_raises_on_an_exhausted_cell(tmp_path):
    def kill_first_cell(cell, attempt):
        if cell.index == 0:
            os._exit(13)

    executor = DistributedSweepExecutor(
        workers=2,
        lease_seconds=0.15,
        poll_seconds=0.01,
        max_attempts=2,
        fault_hook=kill_first_cell,
    )
    with pytest.raises(SweepExecutionError, match="WorkerLost"):
        run_sweep(["scc-2s"], SMALL, executor=executor)


def test_deterministic_runner_errors_are_never_retried(tmp_path):
    # A runner exception is the *code's* fault: retrying cannot help and
    # would break parity with the serial executor. The touch-file proves
    # the cell ran exactly once.
    ran_marker = str(tmp_path / "cell-0-runs")

    def runner(cell):
        if cell.index == 0:
            with open(ran_marker, "a") as fh:
                fh.write("x\n")
            raise ValueError("deterministic failure")
        return cell.arrival_rate

    executor = DistributedSweepExecutor(workers=2, lease_seconds=5.0, poll_seconds=0.01)
    cells = build_cells(["P"], [10.0, 20.0], 1)
    outcomes = executor.run(cells, runner)
    assert not outcomes[0].ok
    assert outcomes[0].error.exc_type == "ValueError"
    assert outcomes[1].ok
    with open(ran_marker) as fh:
        assert fh.read() == "x\n"


def test_corrupt_shard_line_is_requeued_and_recomputed(tmp_path):
    # Worst-case corruption: the board says "done" but the only shard
    # line for the cell is garbage. The parent must notice the outcome
    # is unreadable, requeue the cell, and recompute it.
    workdir = tmp_path / "work"
    workdir.mkdir()
    cells = build_cells(["P"], [10.0, 20.0, 30.0], 1)
    board = JobBoard(workdir / "board.sqlite")
    board.populate(cells)
    claimed, attempt = board.claim("host-dead", lease_seconds=30.0)
    assert claimed.index == 0 and attempt == 1
    board.complete(0)
    board.close()
    with open(workdir / "outcomes-host-dead.jsonl", "w") as fh:
        fh.write('{"index": 0, "attempt": 1, "ok": true, "summa\n')  # torn flush

    events = []
    executor = DistributedSweepExecutor(
        workers=1,
        lease_seconds=5.0,
        poll_seconds=0.01,
        max_attempts=3,
        workdir=workdir,
    )
    executor.lifecycle_hook = lambda kind, payload: events.append((kind, payload))
    outcomes = executor.run(cells, lambda cell: cell.arrival_rate * 2)
    assert [outcome.summary for outcome in outcomes] == [20.0, 40.0, 60.0]
    retried = [payload for kind, payload in events if kind == "cell_retried"]
    assert any(payload.get("corrupt") for payload in retried)
    # The caller-supplied workdir is preserved for post-mortems.
    assert (workdir / "board.sqlite").exists()


def test_corrupt_shard_with_no_attempts_left_is_lost(tmp_path):
    # Same corruption, but the cell already burned its whole claim
    # budget: recovery must give up with a WorkerLost outcome rather
    # than loop.
    workdir = tmp_path / "work"
    workdir.mkdir()
    cells = build_cells(["P"], [10.0, 20.0], 1)
    board = JobBoard(workdir / "board.sqlite")
    board.populate(cells)
    for _ in range(2):  # burn the budget: claim, expire, reclaim
        claimed, _ = board.claim("host-dead", lease_seconds=0.01)
        assert claimed.index == 0
        time.sleep(0.02)
        board.requeue(0)
    board.claim("host-dead", lease_seconds=30.0)
    board.complete(0)
    board.close()
    with open(workdir / "outcomes-host-dead.jsonl", "w") as fh:
        fh.write("garbage\n")

    executor = DistributedSweepExecutor(
        workers=1,
        lease_seconds=5.0,
        poll_seconds=0.01,
        max_attempts=3,
        workdir=workdir,
    )
    outcomes = executor.run(cells, lambda cell: cell.arrival_rate)
    assert not outcomes[0].ok
    assert outcomes[0].error.exc_type == "WorkerLost"
    assert outcomes[1].ok and outcomes[1].summary == 20.0
