"""Tests for the SQLite job board: the claim/lease/retry protocol."""

import multiprocessing
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.distributed import CELL_STATES, JobBoard
from repro.experiments.runner import build_cells


@pytest.fixture
def board(tmp_path):
    board = JobBoard(tmp_path / "board.sqlite")
    yield board
    board.close()


def _populate(board, n=4):
    cells = build_cells(["P"], [float(10 * (i + 1)) for i in range(n)], 1)
    board.populate(cells)
    return cells


def test_claims_hand_out_cells_in_index_order(board):
    cells = _populate(board)
    seen = []
    while True:
        claim = board.claim("host-0", lease_seconds=30.0)
        if claim is None:
            break
        cell, attempt = claim
        assert attempt == 1
        seen.append(cell)
    assert seen == list(cells)
    assert board.counts() == {
        "pending": 0,
        "claimed": 4,
        "done": 0,
        "failed": 0,
    }


def test_claim_returns_none_on_an_empty_board(board):
    assert board.claim("host-0", lease_seconds=30.0) is None


def test_populate_is_idempotent(board):
    cells = _populate(board)
    board.claim("host-0", lease_seconds=30.0)
    board.complete(cells[0].index)
    board.populate(cells)  # a restarted parent re-populates harmlessly
    assert board.counts()["done"] == 1
    assert board.counts()["pending"] == 3


def test_complete_and_fail_are_terminal(board):
    cells = _populate(board, n=2)
    board.claim("host-0", lease_seconds=30.0)
    board.claim("host-0", lease_seconds=30.0)
    board.complete(cells[0].index)
    board.fail(cells[1].index)
    assert board.unfinished() == 0
    assert board.indexes_in_state("done") == {cells[0].index}
    assert board.indexes_in_state("failed") == {cells[1].index}
    # Neither is claimable again.
    assert board.claim("host-1", lease_seconds=30.0) is None


def test_heartbeat_extends_only_the_holders_lease(board):
    cells = _populate(board, n=1)
    cell, _ = board.claim("host-0", lease_seconds=0.2)
    assert board.heartbeat("host-0", cell.index, lease_seconds=60.0)
    # Another host (or a stale holder after reassignment) cannot extend.
    assert not board.heartbeat("host-1", cell.index, lease_seconds=60.0)
    # The extension actually stuck: the original 0.2 s lease would have
    # lapsed by now, but the cell stays claimed.
    time.sleep(0.25)
    retried, exhausted = board.expire_leases(max_attempts=3, backoff_seconds=0.0)
    assert retried == [] and exhausted == []
    assert board.indexes_in_state("claimed") == {cells[0].index}


def test_expired_lease_requeues_with_attempt_count(board):
    cells = _populate(board, n=1)
    board.claim("host-0", lease_seconds=0.01)
    time.sleep(0.05)
    retried, exhausted = board.expire_leases(max_attempts=3, backoff_seconds=0.0)
    assert retried == [(cells[0].index, 1)]
    assert exhausted == []
    # The retry claims with attempt=2.
    cell, attempt = board.claim("host-1", lease_seconds=30.0)
    assert cell == cells[0]
    assert attempt == 2
    assert board.attempts(cell.index) == 2


def test_backoff_delays_the_retry(board):
    cells = _populate(board, n=1)
    board.claim("host-0", lease_seconds=0.01)
    time.sleep(0.05)
    retried, _ = board.expire_leases(max_attempts=3, backoff_seconds=0.3)
    assert retried == [(cells[0].index, 1)]
    # Still inside the backoff window: not claimable, but also not done.
    assert board.claim("host-1", lease_seconds=30.0) is None
    assert board.unfinished() == 1
    time.sleep(0.35)
    assert board.claim("host-1", lease_seconds=30.0) is not None


def test_attempt_ceiling_exhausts_the_cell(board):
    cells = _populate(board, n=1)
    for attempt in (1, 2):
        cell, got = board.claim(f"host-{attempt}", lease_seconds=0.01)
        assert got == attempt
        time.sleep(0.05)
        retried, exhausted = board.expire_leases(max_attempts=2, backoff_seconds=0.0)
        if attempt < 2:
            assert retried == [(cells[0].index, attempt)]
        else:
            assert retried == []
            assert exhausted == [(cells[0].index, 2)]
    assert board.indexes_in_state("failed") == {cells[0].index}
    assert board.unfinished() == 0


def test_requeue_forces_a_finished_cell_back_to_pending(board):
    cells = _populate(board, n=1)
    board.claim("host-0", lease_seconds=30.0)
    board.complete(cells[0].index)
    assert board.unfinished() == 0
    board.requeue(cells[0].index)  # the corruption-recovery path
    assert board.unfinished() == 1
    cell, attempt = board.claim("host-1", lease_seconds=30.0)
    assert cell == cells[0]
    assert attempt == 2  # the original claim still counts


def test_indexes_in_state_rejects_unknown_states(board):
    assert set(CELL_STATES) == {"pending", "claimed", "done", "failed"}
    with pytest.raises(ConfigurationError, match="unknown cell state"):
        board.indexes_in_state("lost")


def test_attempts_rejects_unknown_cells(board):
    with pytest.raises(ConfigurationError, match="no cell"):
        board.attempts(99)


# ----------------------------------------------------------------------
# multi-process claim race
# ----------------------------------------------------------------------


def _claim_all(path, worker, barrier, queue):
    board = JobBoard(path)
    barrier.wait()
    got = []
    while True:
        claim = board.claim(worker, lease_seconds=30.0)
        if claim is None:
            break
        got.append(claim[0].index)
    board.close()
    queue.put((worker, got))


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multi-process board test needs the fork start method",
)
def test_concurrent_hosts_claim_disjoint_cells(tmp_path):
    context = multiprocessing.get_context("fork")
    path = tmp_path / "board.sqlite"
    board = JobBoard(path)
    cells = _populate(board, n=24)
    barrier = context.Barrier(3)
    queue = context.Queue()
    procs = [
        context.Process(
            target=_claim_all, args=(str(path), f"host-{i}", barrier, queue)
        )
        for i in range(3)
    ]
    for proc in procs:
        proc.start()
    claims = {}
    for _ in procs:
        worker, got = queue.get(timeout=60)
        claims[worker] = got
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    claimed = [idx for got in claims.values() for idx in got]
    # Every cell went to exactly one host — the BEGIN IMMEDIATE claim
    # transaction never double-leases under contention.
    assert sorted(claimed) == [cell.index for cell in cells]
    assert len(set(claimed)) == len(cells)
    board.close()
