"""Behavioural tests for the struct-of-arrays simulation engine.

The contract under test: :class:`~repro.engine.array.ArraySimulator`
fires callbacks in exactly the same total ``(time, priority, sequence)``
order as the reference :class:`~repro.engine.simulator.Simulator`, for
every scheduling pattern the library uses — including bulk arrival
tracks, zero-delay events scheduled *during* a same-instant drain, and
mid-bucket ``max_events`` suspension.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.array import ArraySimulator, build_simulator
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, SimulationError


def test_build_simulator_selects_engines():
    assert isinstance(build_simulator(None), Simulator)
    assert isinstance(build_simulator("object"), Simulator)
    assert isinstance(build_simulator("array"), ArraySimulator)
    with pytest.raises(ConfigurationError, match="unknown engine"):
        build_simulator("vector")


def test_orders_by_time_then_priority_then_sequence():
    sim = ArraySimulator()
    trace = []
    sim.schedule(2.0, lambda: trace.append("late"))
    sim.schedule(1.0, lambda: trace.append("b"), priority=1)
    sim.schedule(1.0, lambda: trace.append("a"), priority=0)
    sim.schedule(1.0, lambda: trace.append("c"), priority=1)  # seq breaks tie
    sim.run()
    assert trace == ["a", "b", "c", "late"]
    assert sim.now == 2.0
    assert sim.events_fired == 4


def test_rejects_past_and_nonfinite_schedules():
    sim = ArraySimulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_zero_delay_during_drain_interleaves_by_priority():
    # The twopl_pa pattern: a callback firing at t schedules more work at
    # the same t; it must still interleave with the bucket remainder by
    # (priority, sequence), not run at the end or be lost.
    sim = ArraySimulator()
    trace = []

    def first():
        trace.append("first")
        sim.schedule(0.0, lambda: trace.append("urgent"), priority=0)
        sim.schedule(0.0, lambda: trace.append("lazy"), priority=9)

    sim.schedule(1.0, first, priority=0)
    sim.schedule(1.0, lambda: trace.append("second"), priority=5)
    sim.run()
    assert trace == ["first", "urgent", "second", "lazy"]


def test_cancel_prevents_firing_and_is_idempotent():
    sim = ArraySimulator()
    trace = []
    handle = sim.schedule(1.0, lambda: trace.append("cancelled"))
    sim.schedule(1.0, lambda: trace.append("kept"))
    sim.cancel(handle)
    sim.cancel(handle)  # double-cancel is a no-op
    assert sim.pending_events == 1
    sim.run()
    assert trace == ["kept"]
    assert sim.events_fired == 1


def test_run_until_stops_clock_and_preserves_future_events():
    sim = ArraySimulator()
    trace = []
    sim.schedule(1.0, lambda: trace.append(1.0))
    sim.schedule(3.0, lambda: trace.append(3.0))
    sim.run(until=2.0)
    assert trace == [1.0]
    assert sim.now == 2.0
    sim.run()
    assert trace == [1.0, 3.0]


def test_max_events_suspends_mid_bucket_and_resumes_in_order():
    sim = ArraySimulator()
    trace = []
    for name in "abcd":
        sim.schedule(1.0, trace.append, name)
    sim.run(max_events=2)
    assert trace == ["a", "b"]
    assert sim.pending_events == 2
    sim.run()
    assert trace == ["a", "b", "c", "d"]


def test_step_fires_exactly_one_event():
    sim = ArraySimulator()
    trace = []
    sim.schedule(1.0, trace.append, "x")
    sim.schedule(2.0, trace.append, "y")
    assert sim.step() and trace == ["x"]
    assert sim.step() and trace == ["x", "y"]
    assert not sim.step()


def test_run_is_not_reentrant():
    sim = ArraySimulator()

    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError, match="re-entrant"):
        sim.run()


# ----------------------------------------------------------------------
# schedule_batch (arrival tracks)
# ----------------------------------------------------------------------


def test_batch_interleaves_with_individual_events_by_sequence():
    # An individually scheduled event at the same (time, priority) fires
    # before batch entries claimed later — sequence order is global.
    sim = ArraySimulator()
    trace = []
    sim.schedule_at(2.0, trace.append, "individual")
    sim.schedule_batch(
        [1.0, 2.0, 3.0], trace.append, [("b1",), ("b2",), ("b3",)]
    )
    sim.run()
    assert trace == ["b1", "individual", "b2", "b3"]


def test_batch_priority_beats_sequence_at_same_instant():
    sim = ArraySimulator()
    trace = []
    sim.schedule_batch([1.0], trace.append, [("arrival",)], priority=10)
    sim.schedule_at(1.0, trace.append, "commit", priority=0)
    sim.run()
    assert trace == ["commit", "arrival"]


def test_batch_with_duplicate_times_fires_in_payload_order():
    sim = ArraySimulator()
    trace = []
    count = sim.schedule_batch(
        [1.0, 1.0, 1.0], trace.append, [("x",), ("y",), ("z",)]
    )
    assert count == 3
    assert sim.pending_events == 3
    sim.run()
    assert trace == ["x", "y", "z"]


def test_batch_validation_errors():
    sim = ArraySimulator()
    with pytest.raises(SimulationError, match="payloads"):
        sim.schedule_batch([1.0, 2.0], print, [("a",)])
    with pytest.raises(SimulationError, match="non-decreasing"):
        sim.schedule_batch([2.0, 1.0], print, [("a",), ("b",)])
    with pytest.raises(SimulationError, match="finite"):
        sim.schedule_batch([float("inf")], print, [("a",)])
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="precedes"):
        sim.schedule_batch([0.5], print, [("a",)])
    assert sim.schedule_batch([], print, []) == 0


def test_batch_mid_run_rejected():
    sim = ArraySimulator()

    def load_more():
        sim.schedule_batch([5.0], print, [("late",)])

    sim.schedule(1.0, load_more)
    with pytest.raises(SimulationError, match="mid-run"):
        sim.run()


def test_two_tracks_merge_by_time():
    sim = ArraySimulator()
    trace = []
    sim.schedule_batch([1.0, 3.0], trace.append, [("a1",), ("a2",)])
    sim.schedule_batch([2.0, 4.0], trace.append, [("b1",), ("b2",)])
    sim.run()
    assert trace == ["a1", "b1", "a2", "b2"]


# ----------------------------------------------------------------------
# equivalence with the object engine
# ----------------------------------------------------------------------

_schedule_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(_schedule_ops)
def test_firing_order_matches_object_engine(ops):
    # Low-resolution times force heavy same-instant collisions, the case
    # where bucketed dispatch could diverge from the reference heap.
    traces = []
    for sim in (Simulator(), ArraySimulator()):
        trace = []
        for index, (delay, priority) in enumerate(ops):
            sim.schedule(
                round(delay, 1), trace.append, index, priority=priority
            )
        sim.run()
        traces.append(trace)
    assert traces[0] == traces[1]


@settings(max_examples=30, deadline=None)
@given(_schedule_ops, st.integers(min_value=1, max_value=8))
def test_chunked_run_matches_object_engine(ops, chunk):
    # Repeated bounded runs (the run_scenario idiom) must fire the same
    # order as one unbounded run, including mid-bucket suspensions.
    traces = []
    for sim in (Simulator(), ArraySimulator()):
        trace = []
        for index, (delay, priority) in enumerate(ops):
            sim.schedule(
                round(delay, 1), trace.append, index, priority=priority
            )
        while sim.pending_events:
            sim.run(max_events=chunk)
        traces.append(trace)
    assert traces[0] == traces[1]
