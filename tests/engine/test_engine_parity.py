"""Object-vs-array engine parity: bit-identical summaries everywhere.

The array engine is pure mechanism — batched RNG draws, arrival tracks,
bucketed dispatch — so every :class:`~repro.metrics.stats.RunSummary`
field must equal the object engine's output *exactly* (``==`` on the
dataclass dict, no tolerances).  The grid covers every registered
protocol on the paper baseline and every registered scenario (each
arrival process and access pattern, including the tensor fallback paths
for MMPP/diurnal/trace arrivals) on SCC-2S, plus a hypothesis sweep over
arbitrary rates and replications.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_once
from repro.protocols.registry import available_protocols, protocol_spec
from repro.workloads.scenarios import available_scenarios, get_scenario

SCALE = dict(
    num_transactions=120,
    warmup_commits=12,
    replications=1,
    check_serializability=False,
)


def summaries_for(config, protocol, rate, replication=0):
    factory = protocol_spec(protocol)
    return [
        dataclasses.asdict(
            run_once(
                factory,
                config,
                arrival_rate=rate,
                replication=replication,
                engine=engine,
            )
        )
        for engine in ("object", "array")
    ]


@pytest.mark.parametrize("protocol", available_protocols())
def test_every_protocol_bit_identical_on_paper_baseline(protocol):
    config = get_scenario("paper-baseline").to_config(**SCALE)
    obj, arr = summaries_for(config, protocol, rate=120.0)
    assert obj == arr


@pytest.mark.parametrize("scenario", available_scenarios())
def test_every_scenario_bit_identical_on_scc_2s(scenario):
    config = get_scenario(scenario).to_config(**SCALE)
    obj, arr = summaries_for(config, "scc-2s", rate=100.0, replication=1)
    assert obj == arr


def test_hotspot_contention_bit_identical_under_twopl():
    # Lock-heavy + skewed access drives the deferral tick and zero-delay
    # restart events — the straggler path of the array run loop.
    config = get_scenario("flash-sale-hotspot").to_config(**SCALE)
    obj, arr = summaries_for(config, "2pl-pa", rate=160.0)
    assert obj == arr


@settings(max_examples=10, deadline=None)
@given(
    rate=st.floats(min_value=30.0, max_value=220.0, allow_nan=False),
    replication=st.integers(min_value=0, max_value=5),
    protocol=st.sampled_from(["scc-2s", "occ-bc", "wait-50"]),
)
def test_parity_holds_at_arbitrary_coordinates(rate, replication, protocol):
    config = get_scenario("paper-baseline").to_config(**SCALE)
    obj, arr = summaries_for(config, protocol, rate=rate, replication=replication)
    assert obj == arr
