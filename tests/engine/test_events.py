"""Unit tests for the event queue."""

import pytest

from repro.engine.events import EventQueue
from repro.errors import SimulationError


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(2.0, fired.append, "b")
    queue.push(1.0, fired.append, "a")
    queue.push(3.0, fired.append, "c")
    while queue:
        event = queue.pop()
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_schedule_order():
    queue = EventQueue()
    first = []
    queue.push(1.0, first.append, 1)
    queue.push(1.0, first.append, 2)
    queue.push(1.0, first.append, 3)
    while queue:
        event = queue.pop()
        event.callback(*event.args)
    assert first == [1, 2, 3]


def test_priority_breaks_same_time_ties():
    queue = EventQueue()
    fired = []
    queue.push(1.0, fired.append, "late", priority=10)
    queue.push(1.0, fired.append, "early", priority=0)
    while queue:
        event = queue.pop()
        event.callback(*event.args)
    assert fired == ["early", "late"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, fired.append, "keep")
    drop = queue.push(0.5, fired.append, "drop")
    queue.cancel(drop)
    assert len(queue) == 1
    event = queue.pop()
    event.callback(*event.args)
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    queue = EventQueue()
    assert queue.peek_time() is None
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    assert queue.peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert not queue
