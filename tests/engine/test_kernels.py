"""Unit tests for the pure state-transition kernels."""

from types import SimpleNamespace

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.kernels import (
    ReadRecord,
    completion_is_stale,
    event_sort_position,
    fires_before,
    program_exhausted,
    record_access,
    select_fork_donor,
    select_replacement,
    writeset_addition,
)


def shadow(pos, serial):
    return SimpleNamespace(pos=pos, serial=serial)


# ----------------------------------------------------------------------
# access bookkeeping
# ----------------------------------------------------------------------


def test_record_access_first_read_records_position():
    record = record_access(None, pos=3, version=7, now=1.5)
    assert record == ReadRecord(3, 7, 1.5)


def test_record_access_reread_keeps_first_position():
    first = record_access(None, pos=1, version=2, now=0.5)
    second = record_access(first, pos=6, version=9, now=2.0)
    assert second.position == 1  # first touch wins
    assert second.version == 9 and second.time == 2.0


def test_writeset_addition_only_first_write():
    assert writeset_addition(is_write=True, already_recorded=False)
    assert not writeset_addition(is_write=True, already_recorded=True)
    assert not writeset_addition(is_write=False, already_recorded=False)


def test_program_exhausted_boundary():
    assert not program_exhausted(4, 5)
    assert program_exhausted(5, 5)
    assert program_exhausted(6, 5)


def test_completion_is_stale_epoch_and_state():
    assert not completion_is_stale(2, 2, is_running=True)
    assert completion_is_stale(3, 2, is_running=True)  # epoch bumped
    assert completion_is_stale(2, 2, is_running=False)  # blocked/aborted


# ----------------------------------------------------------------------
# shadow selection
# ----------------------------------------------------------------------


def test_fork_donor_empty_is_none():
    assert select_fork_donor([]) is None


def test_fork_donor_latest_position_wins():
    early, late = shadow(2, serial=0), shadow(5, serial=1)
    assert select_fork_donor([early, late]) is late


def test_fork_donor_tie_breaks_by_creation_order():
    older, newer = shadow(3, serial=1), shadow(3, serial=2)
    assert select_fork_donor([newer, older]) is older


def test_replacement_empty_is_none():
    assert select_replacement([], committer_id=9) is None


def test_replacement_prefers_latest_position():
    survivors = [(1, shadow(2, 0)), (2, shadow(6, 1))]
    assert select_replacement(survivors, committer_id=1) == survivors[1]


def test_replacement_prefers_committer_among_position_ties():
    survivors = [(1, shadow(4, 0)), (7, shadow(4, 1))]
    # Commit Rule case 1: the shadow hedging against the committer wins
    # even though the other was created first.
    assert select_replacement(survivors, committer_id=7) == survivors[1]


def test_replacement_final_tie_breaks_by_creation_order():
    survivors = [(2, shadow(4, 3)), (3, shadow(4, 1))]
    assert select_replacement(survivors, committer_id=9) == survivors[1]


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 20)),
        min_size=1,
        max_size=8,
    )
)
def test_fork_donor_is_permutation_invariant(raw):
    # Deterministic choice must not depend on candidate enumeration order.
    donors = [shadow(pos, serial) for serial, (pos, _) in enumerate(raw)]
    chosen = select_fork_donor(donors)
    assert select_fork_donor(list(reversed(donors))) is chosen


# ----------------------------------------------------------------------
# event ordering
# ----------------------------------------------------------------------


def test_event_sort_position_is_the_triple():
    assert event_sort_position(1.5, 2, 9) == (1.5, 2, 9)


@given(
    st.tuples(st.floats(0, 100), st.integers(0, 10), st.integers(0, 1000)),
    st.tuples(st.floats(0, 100), st.integers(0, 10), st.integers(0, 1000)),
)
def test_fires_before_is_lexicographic(a, b):
    assert fires_before(a, b) == (a < b)
    # Antisymmetry on distinct keys: exactly one direction fires first.
    if a != b:
        assert fires_before(a, b) != fires_before(b, a)
