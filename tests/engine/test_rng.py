"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.engine.rng import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7)["arrivals"].random(5)
    b = RandomStreams(7)["arrivals"].random(5)
    assert np.allclose(a, b)


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = streams["arrivals"].random(5)
    b = streams["pages"].random(5)
    assert not np.allclose(a, b)


def test_access_order_does_not_matter():
    one = RandomStreams(7)
    _ = one["pages"].random(3)
    a = one["arrivals"].random(5)
    two = RandomStreams(7)
    b = two["arrivals"].random(5)
    assert np.allclose(a, b)


def test_consuming_one_stream_leaves_others_untouched():
    one = RandomStreams(7)
    _ = one["noise"].random(1000)
    a = one["arrivals"].random(5)
    b = RandomStreams(7)["arrivals"].random(5)
    assert np.allclose(a, b)


def test_spawn_children_differ_from_parent_and_each_other():
    root = RandomStreams(7)
    c0 = root.spawn(0)["arrivals"].random(5)
    c1 = root.spawn(1)["arrivals"].random(5)
    parent = root["arrivals"].random(5)
    assert not np.allclose(c0, c1)
    assert not np.allclose(c0, parent)


def test_spawn_is_reproducible():
    a = RandomStreams(7).spawn(3)["x"].random(4)
    b = RandomStreams(7).spawn(3)["x"].random(4)
    assert np.allclose(a, b)


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        RandomStreams(7).spawn(-1)


def test_non_integer_seed_rejected():
    with pytest.raises(TypeError):
        RandomStreams("seed")  # type: ignore[arg-type]
