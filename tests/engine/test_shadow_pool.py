"""Unit tests for the shadow-pool slot allocator and fast-path install.

Covers the :class:`~repro.engine.shadow_pool.ShadowPool` lifecycle —
deterministic lowest-first slot assignment, release/reuse, doubling
growth with occupied slots preserved in place, and the error paths —
plus the structural eligibility rules of
:func:`~repro.engine.shadow_pool.maybe_install_fast_path` (the fused
driver must install exactly when the binding is an array-engine SCC
protocol with no hook overrides and infinite resources).  Behavioural
parity of the installed driver lives in ``test_shadow_pool_parity.py``.
"""

import numpy as np
import pytest

from repro.core.scc_2s import SCC2S
from repro.engine.shadow_pool import (
    DEFAULT_POOL_CAPACITY,
    ShadowPool,
    maybe_install_fast_path,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.metrics.stats import MetricsCollector
from repro.system.model import RTDBSystem
from repro.system.resources import FiniteResources


def make_system(protocol=None, engine="array", resources=None):
    return RTDBSystem(
        protocol=protocol or SCC2S(),
        num_pages=32,
        resources=resources,
        metrics=MetricsCollector(warmup_commits=0),
        record_history=False,
        engine=engine,
    )


# ----------------------------------------------------------------------
# ShadowPool slot lifecycle
# ----------------------------------------------------------------------


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        ShadowPool(0)
    with pytest.raises(ConfigurationError):
        ShadowPool(-3)


def test_slots_are_assigned_lowest_first():
    pool = ShadowPool(4)
    assert [pool.acquire(txn) for txn in (10, 11, 12)] == [0, 1, 2]
    assert pool.slot_of == {10: 0, 11: 1, 12: 2}
    assert pool.txn_ids[:3].tolist() == [10, 11, 12]
    assert len(pool) == 3
    assert pool.free_slots == 1


def test_release_returns_slot_and_clears_state():
    pool = ShadowPool(4)
    slot = pool.acquire(7)
    pool.read_masks[slot] = 0b1010
    pool.write_masks[slot] = 0b0010
    pool.release(7)
    assert pool.txn_ids[slot] == -1
    assert pool.read_masks[slot] == 0
    assert pool.write_masks[slot] == 0
    assert len(pool) == 0
    # The freed slot is reused first (deterministic assignment).
    assert pool.acquire(8) == slot


def test_double_acquire_and_unknown_release_raise():
    pool = ShadowPool(2)
    pool.acquire(1)
    with pytest.raises(ProtocolError):
        pool.acquire(1)
    with pytest.raises(ProtocolError):
        pool.release(99)


def test_growth_doubles_and_preserves_occupied_slots():
    pool = ShadowPool(2)
    pool.acquire(0)
    pool.acquire(1)
    pool.read_masks[0] = 0b101
    pool.write_masks[1] = 0b010
    assert pool.grow_events == 0
    # Third acquire exhausts the pool and triggers a doubling.
    assert pool.acquire(2) == 2
    assert pool.grow_events == 1
    assert pool.capacity == 4
    assert len(pool.read_masks) == len(pool.write_masks) == 4
    # Occupied slots (ids and masks) survive the growth in place.
    assert pool.txn_ids[:3].tolist() == [0, 1, 2]
    assert pool.read_masks[0] == 0b101
    assert pool.write_masks[1] == 0b010
    # Growth keeps handing out ascending slots.
    assert pool.acquire(3) == 3
    assert pool.grow_events == 1


def test_repeated_growth_from_capacity_one():
    pool = ShadowPool(1)
    for txn in range(9):
        assert pool.acquire(txn) == txn
    assert pool.capacity == 16
    assert pool.grow_events == 4
    for txn in range(9):
        pool.release(txn)
    assert pool.free_slots == 16


def test_live_slots_reduction():
    pool = ShadowPool(8)
    for txn in (5, 6, 7):
        pool.acquire(txn)
    pool.release(6)
    assert np.array_equal(pool.live_slots(), np.array([0, 2]))


# ----------------------------------------------------------------------
# fast-path eligibility
# ----------------------------------------------------------------------


def test_fast_path_installs_on_the_array_engine():
    system = make_system()
    driver = system.protocol.fast_path
    assert driver is not None
    assert driver.pool.capacity == DEFAULT_POOL_CAPACITY
    # The hot entry points are rebound to the driver as instance attrs.
    assert system.protocol._advance.__self__ is driver
    assert system.protocol.on_arrival.__self__ is driver
    assert system.protocol.commit_transaction.__self__ is driver


def test_fast_path_skips_the_object_engine():
    system = make_system(engine="object")
    assert getattr(system.protocol, "fast_path", None) is None


def test_fast_path_skips_finite_resources():
    resources = FiniteResources(cpu_time=0.001, io_time=0.005, num_servers=2)
    system = make_system(resources=resources)
    assert getattr(system.protocol, "fast_path", None) is None


def test_fast_path_skips_subclasses_overriding_fused_hooks():
    class HookedSCC2S(SCC2S):
        def after_step(self, *args, **kwargs):
            return super().after_step(*args, **kwargs)

    system = make_system(protocol=HookedSCC2S())
    assert getattr(system.protocol, "fast_path", None) is None


def test_reinstall_with_custom_capacity_replaces_the_driver():
    system = make_system()
    first = system.protocol.fast_path
    driver = maybe_install_fast_path(system.protocol, system, capacity=2)
    assert driver is not None and driver is not first
    assert system.protocol.fast_path is driver
    assert driver.pool.capacity == 2
