"""Bit-identity of the fused shadow-pool path under adversarial schedules.

The fast path's contract is that summaries equal the object engine's
``==`` — not approximately — on *every* workload, so these sweeps aim at
the schedules most likely to expose an ordering or state-mirroring bug:

* bursts of transactions arriving at literally the same instant (the
  bucketed dispatch drains them as one cohort, and slot assignment,
  conflict recording, and the Write Rule broadcast all happen inside a
  single drain);
* hotspot programs where every transaction hammers a few pages, maximizing
  conflict-table and reverse-index traffic;
* arrival bursts larger than the pool, forcing the exhaustion/growth path
  mid-run (and, with a re-installed capacity-1 driver, repeatedly);
* hypothesis-generated schedules mixing all of the above.

Workloads are hand-built specs (no RNG), loaded into directly constructed
systems so the exact same transaction list drives both engines.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scc_base import SCCProtocolBase
from repro.engine.shadow_pool import maybe_install_fast_path
from repro.metrics.stats import MetricsCollector
from repro.protocols.registry import available_protocols, protocol_spec
from repro.system.model import RTDBSystem
from repro.txn.spec import Step, TransactionSpec
from repro.values.classes import TransactionClass

NUM_PAGES = 24

BURST_CLASS = TransactionClass(
    name="burst",
    num_steps=4,
    write_probability=0.25,
    slack_factor=8.0,
)


def build_specs(schedule):
    """Materialize ``(arrival, ((page, is_write), ...))`` rows as specs."""
    return [
        TransactionSpec.build(
            txn_id=txn_id,
            arrival=arrival,
            steps=[Step(page, is_write) for page, is_write in steps],
            txn_class=BURST_CLASS,
            step_duration=0.006,
        )
        for txn_id, (arrival, steps) in enumerate(schedule)
    ]


def run_schedule(protocol_name, schedule, engine, capacity=None):
    """Run a hand-built schedule on one engine; return (summary, protocol)."""
    protocol = protocol_spec(protocol_name)()
    system = RTDBSystem(
        protocol=protocol,
        num_pages=NUM_PAGES,
        metrics=MetricsCollector(warmup_commits=0),
        record_history=False,
        engine=engine,
    )
    if capacity is not None and engine == "array":
        assert maybe_install_fast_path(protocol, system, capacity=capacity)
    system.load_workload(build_specs(schedule))
    system.run()
    return dataclasses.asdict(system.metrics.summary()), protocol


def assert_parity(protocol_name, schedule, capacity=None):
    obj_summary, _ = run_schedule(protocol_name, schedule, "object")
    arr_summary, protocol = run_schedule(
        protocol_name, schedule, "array", capacity=capacity
    )
    assert obj_summary == arr_summary
    # The sweep must exercise the vectorized path, not fall back to the
    # generic loop: every shipped SCC variant is eligible.
    if isinstance(protocol, SCCProtocolBase):
        assert protocol.fast_path is not None
    return arr_summary, protocol


# Three same-instant waves over a hot page set: wave 0 is a 6-transaction
# simultaneous burst on overlapping read/write programs, wave 1 lands
# while wave 0's shadows are mid-flight, wave 2 arrives as wave 1 commits.
ADVERSARIAL_BURST = (
    [(0.0, ((0, True), (1, False), (2, False))) for _ in range(3)]
    + [(0.0, ((1, True), (0, False), (3, False))) for _ in range(3)]
    + [(0.02, ((0, False), (1, True), (2, True))) for _ in range(4)]
    + [(0.15, ((2, False), (3, True), (0, False))) for _ in range(4)]
)


@pytest.mark.parametrize("protocol", available_protocols())
def test_every_protocol_bit_identical_on_same_instant_bursts(protocol):
    assert_parity(protocol, ADVERSARIAL_BURST)


def test_burst_larger_than_pool_grows_and_stays_identical():
    # 80 simultaneous arrivals against a pool re-installed at capacity 16:
    # every slot is claimed inside one bucket drain, the pool doubles
    # (16 -> 32 -> 64 -> 128) mid-drain, and results must not move.
    schedule = [
        (0.0, ((txn % NUM_PAGES, txn % 4 == 0), ((txn + 7) % NUM_PAGES, False)))
        for txn in range(80)
    ]
    summary, protocol = assert_parity("scc-2s", schedule, capacity=16)
    pool = protocol.fast_path.pool
    assert summary["committed"] == 80
    assert pool.grow_events >= 1
    assert pool.capacity >= 80
    # Every transaction departed: all slots returned, mirrors cleared.
    assert len(pool) == 0
    assert pool.free_slots == pool.capacity
    assert all(mask == 0 for mask in pool.read_masks)
    assert all(mask == 0 for mask in pool.write_masks)


def test_capacity_one_pool_grows_repeatedly_and_stays_identical():
    _, protocol = assert_parity("scc-ks", ADVERSARIAL_BURST, capacity=1)
    assert protocol.fast_path.pool.grow_events >= 3


# ----------------------------------------------------------------------
# hypothesis sweep: arbitrary same-instant schedules
# ----------------------------------------------------------------------


@st.composite
def adversarial_schedules(draw):
    """Schedules with few distinct instants and a small hot page set.

    Arrival times come from a coarse grid so multiple transactions share
    instants by construction; pages come from an 8-page universe so the
    conflict machinery is never idle.
    """
    num_txns = draw(st.integers(min_value=2, max_value=14))
    num_instants = draw(st.integers(min_value=1, max_value=3))
    rows = []
    for _ in range(num_txns):
        instant = draw(st.integers(min_value=0, max_value=num_instants - 1))
        steps = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=7),
                    st.booleans(),
                ),
                min_size=1,
                max_size=5,
            )
        )
        rows.append((instant * 0.017, tuple(steps)))
    rows.sort(key=lambda row: row[0])
    return rows


@settings(max_examples=25, deadline=None)
@given(
    schedule=adversarial_schedules(),
    protocol=st.sampled_from(["scc-2s", "scc-ks", "scc-vw", "2pl-pa"]),
)
def test_parity_holds_on_arbitrary_same_instant_schedules(schedule, protocol):
    assert_parity(protocol, schedule)


@settings(max_examples=10, deadline=None)
@given(schedule=adversarial_schedules(), capacity=st.integers(1, 4))
def test_parity_survives_tiny_pools(schedule, capacity):
    assert_parity("scc-2s", schedule, capacity=capacity)
