"""Unit tests for the simulator loop."""

import pytest

from repro.engine.simulator import Simulator
from repro.errors import SimulationError


def test_run_advances_clock_and_fires_in_order():
    sim = Simulator()
    trace = []
    sim.schedule(2.0, lambda: trace.append(("b", sim.now)))
    sim.schedule(1.0, lambda: trace.append(("a", sim.now)))
    sim.run()
    assert trace == [("a", 1.0), ("b", 2.0)]
    assert sim.now == 2.0
    assert sim.events_fired == 2


def test_events_can_schedule_more_events():
    sim = Simulator()
    trace = []

    def chain(n):
        trace.append((n, sim.now))
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert trace == [(1, 1.0), (2, 2.0), (3, 3.0)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_rejects_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run()
    assert fired == [1, 5]


def test_run_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sim.pending_events == 6


def test_cancel_pending_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.cancel(handle)
    sim.run()
    assert fired == []


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_zero_delay_event_fires_at_now():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]
