"""Object-vs-array engine parity of the telemetry streams.

The acceptance criterion for the tracing subsystem: both engines emit the
*identical* typed event stream — same kinds, same simulated times, same
lane numbering, same payloads — because the emission points live in
shared protocol/system code and the engines fire callbacks in the same
total order.  The suite also pins the counter registry and the golden
determinism invariant (tracing must not perturb results).
"""

import dataclasses

import pytest

from repro.experiments.runner import run_instrumented, run_once
from repro.protocols.registry import protocol_spec
from repro.telemetry.tracer import MemoryTracer, NullTracer
from repro.workloads.scenarios import get_scenario

SCALE = dict(
    num_transactions=100,
    warmup_commits=10,
    replications=1,
    check_serializability=False,
)

SCENARIOS = ("paper-baseline", "flash-sale-hotspot")
PROTOCOLS = ("scc-2s", "scc-vw", "2pl-pa")


def traced_run(scenario, protocol, engine, rate=120.0):
    config = get_scenario(scenario).to_config(**SCALE)
    tracer = MemoryTracer()
    summary, telemetry = run_instrumented(
        protocol_spec(protocol), config, arrival_rate=rate,
        engine=engine, tracer=tracer,
    )
    return summary, telemetry, tracer


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_trace_streams_bit_identical_across_engines(scenario, protocol):
    runs = [traced_run(scenario, protocol, engine)
            for engine in ("object", "array")]
    (obj_summary, obj_tel, obj_tracer), (arr_summary, arr_tel, arr_tracer) = runs
    assert obj_tracer.dicts() == arr_tracer.dicts()
    assert obj_tracer.events  # the parity must not be vacuous
    assert obj_summary == arr_summary
    # Counters derive from the same emission points, so they must agree;
    # wall_clock is host time and events_fired/peak depth are engine
    # mechanics, so only the lifecycle portion is parity-gated.
    assert obj_tel["counters"] == arr_tel["counters"]
    assert obj_tel["gauges"] == arr_tel["gauges"]


@pytest.mark.parametrize("protocol", ("scc-2s", "scc-vw"))
def test_scc_traces_cover_the_speculation_machinery(protocol):
    _, _, tracer = traced_run("flash-sale-hotspot", protocol, "object")
    kinds = {event.kind for event in tracer.events}
    assert {"txn_start", "step_complete", "commit", "shadow_fork"} <= kinds
    forks = [e for e in tracer.events if e.kind == "shadow_fork"]
    assert all(e.data.get("origin") in ("spawn", "restart") for e in forks)


def test_lanes_are_run_local_and_zero_based():
    _, _, first = traced_run("paper-baseline", "scc-2s", "object")
    _, _, second = traced_run("paper-baseline", "scc-2s", "object")
    # Execution serials are process-global and keep counting between the
    # two runs; lane normalization must hide that entirely.
    assert first.dicts() == second.dicts()
    lanes = sorted({e.lane for e in first.events if e.lane is not None})
    assert lanes[0] == 0
    assert lanes == list(range(len(lanes)))


@pytest.mark.parametrize("engine", ("object", "array"))
def test_tracing_never_perturbs_results(engine):
    config = get_scenario("paper-baseline").to_config(**SCALE)
    spec = protocol_spec("scc-2s")
    plain = run_once(spec, config, arrival_rate=140.0, engine=engine)
    with_null = run_once(
        spec, config, arrival_rate=140.0, engine=engine, tracer=NullTracer(),
    )
    traced_summary, _, _ = traced_run(
        "paper-baseline", "scc-2s", engine, rate=140.0,
    )
    assert dataclasses.asdict(plain) == dataclasses.asdict(with_null)
    # traced_run uses rate=140 here to compare against the same cell.
    assert dataclasses.asdict(plain) == dataclasses.asdict(traced_summary)
