"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import main


def test_fig3_prints_table(capsys):
    assert main(["fig3", "--max-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "SCC-OB" in out
    assert "SCC-CB" in out
    # n=3 row: 5 shadows under OB, 3 under CB.
    assert any("3" in line and "5" in line for line in out.splitlines())


def test_fig13a_reduced_scale(capsys):
    code = main(
        [
            "fig13a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "60,120",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Missed Ratio" in out
    assert "SCC-2S" in out
    assert "2PL-PA" in out
    assert "60" in out and "120" in out


def test_fig14a_reduced_scale(capsys):
    code = main(
        [
            "fig14a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "80",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "System Value" in out
    assert "SCC-VW" in out


def test_fig13a_parallel_executor(capsys):
    code = main(
        [
            "fig13a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "60",
            "--executor", "process",
            "--workers", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Missed Ratio" in out
    assert "SCC-2S" in out


def test_executor_and_workers_agree_with_serial(capsys):
    argv = ["fig13a", "--transactions", "120", "--replications", "1",
            "--rates", "60,120"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel_out = capsys.readouterr().out
    # Identical summaries => identical printed tables (modulo the trailing
    # wall-clock line, which is timing-dependent).
    strip = lambda text: [l for l in text.splitlines() if not l.startswith("[")]
    assert strip(serial_out) == strip(parallel_out)


def test_scenarios_command_lists_registry(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    for name in (
        "paper-baseline",
        "bursty-telecom",
        "flash-sale-hotspot",
        "diurnal-oltp",
        "trace-replay",
    ):
        assert name in out


def test_scenario_flag_swaps_workload(capsys):
    code = main(
        [
            "fig13a",
            "--scenario", "flash-sale-hotspot",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "100",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario: flash-sale-hotspot" in out


def test_scenario_paper_baseline_matches_default_path(capsys):
    # The acceptance criterion: `scc-experiments --scenario paper-baseline`
    # (command defaults to fig13a) is bit-identical to the default path.
    argv = ["--transactions", "120", "--replications", "1", "--rates", "60,120"]
    assert main(["fig13a"] + argv) == 0
    default_out = capsys.readouterr().out
    assert main(argv + ["--scenario", "paper-baseline"]) == 0
    scenario_out = capsys.readouterr().out
    strip = lambda text: [
        line.replace(" [scenario: paper-baseline]", "")
        for line in text.splitlines()
        if not line.startswith("[")  # trailing wall-clock line
    ]
    assert strip(default_out) == strip(scenario_out)


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit, match="unknown scenario"):
        main(["fig13a", "--scenario", "does-not-exist"])


def test_invalid_workers_rejected():
    with pytest.raises(SystemExit):
        main(["fig13a", "--workers", "two"])


def test_invalid_rates_rejected():
    with pytest.raises(SystemExit):
        main(["fig13a", "--rates", "ten,twenty"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
