"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import main


def test_fig3_prints_table(capsys):
    assert main(["fig3", "--max-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "SCC-OB" in out
    assert "SCC-CB" in out
    # n=3 row: 5 shadows under OB, 3 under CB.
    assert any("3" in line and "5" in line for line in out.splitlines())


def test_fig13a_reduced_scale(capsys):
    code = main(
        [
            "fig13a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "60,120",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Missed Ratio" in out
    assert "SCC-2S" in out
    assert "2PL-PA" in out
    assert "60" in out and "120" in out


def test_fig14a_reduced_scale(capsys):
    code = main(
        [
            "fig14a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "80",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "System Value" in out
    assert "SCC-VW" in out


def test_fig13a_parallel_executor(capsys):
    code = main(
        [
            "fig13a",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "60",
            "--executor", "process",
            "--workers", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Missed Ratio" in out
    assert "SCC-2S" in out


def test_executor_and_workers_agree_with_serial(capsys):
    argv = ["fig13a", "--transactions", "120", "--replications", "1",
            "--rates", "60,120"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel_out = capsys.readouterr().out
    # Identical summaries => identical printed tables (modulo the trailing
    # wall-clock line, which is timing-dependent).
    strip = lambda text: [l for l in text.splitlines() if not l.startswith("[")]
    assert strip(serial_out) == strip(parallel_out)


def test_scenarios_command_lists_registry(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    for name in (
        "paper-baseline",
        "bursty-telecom",
        "flash-sale-hotspot",
        "diurnal-oltp",
        "trace-replay",
    ):
        assert name in out


def test_scenario_flag_swaps_workload(capsys):
    code = main(
        [
            "fig13a",
            "--scenario", "flash-sale-hotspot",
            "--transactions", "120",
            "--replications", "1",
            "--rates", "100",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario: flash-sale-hotspot" in out


def test_scenario_paper_baseline_matches_default_path(capsys):
    # The acceptance criterion: `scc-experiments --scenario paper-baseline`
    # (command defaults to fig13a) is bit-identical to the default path.
    argv = ["--transactions", "120", "--replications", "1", "--rates", "60,120"]
    assert main(["fig13a"] + argv) == 0
    default_out = capsys.readouterr().out
    assert main(argv + ["--scenario", "paper-baseline"]) == 0
    scenario_out = capsys.readouterr().out
    strip = lambda text: [
        line.replace(" [scenario: paper-baseline]", "")
        for line in text.splitlines()
        if not line.startswith("[")  # trailing wall-clock line
    ]
    assert strip(default_out) == strip(scenario_out)


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit, match="unknown scenario"):
        main(["fig13a", "--scenario", "does-not-exist"])


def test_invalid_workers_rejected():
    with pytest.raises(SystemExit):
        main(["fig13a", "--workers", "two"])


def test_invalid_rates_rejected():
    with pytest.raises(SystemExit):
        main(["fig13a", "--rates", "ten,twenty"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


# ----------------------------------------------------------------------
# the declarative experiment commands (run / specs)
# ----------------------------------------------------------------------


def _write_smoke_spec(tmp_path, **overrides):
    from repro.experiments.spec import ExperimentSpec

    fields = dict(
        arrival_rates=(60.0, 120.0),
        replications=1,
        num_transactions=120,
        warmup_commits=12,
    )
    fields.update(overrides)
    spec = ExperimentSpec.create(["scc-2s", "occ-bc"], **fields)
    path = tmp_path / "experiment.json"
    spec.save(path)
    return path, spec


def test_specs_lists_protocol_registry(capsys):
    assert main(["specs"]) == 0
    out = capsys.readouterr().out
    for family in ("scc-2s", "scc-ks", "scc-vw", "occ-bc", "wait-50", "serial"):
        assert family in out
    assert "k=2" in out  # parameters and defaults are shown
    assert "replacement=lbfo" in out


def test_run_executes_a_spec_file(capsys, tmp_path):
    path, _ = _write_smoke_spec(tmp_path)
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Missed Ratio" in out
    assert "System Value" in out
    assert "SCC-2S" in out and "OCC-BC" in out


def test_run_spec_bit_identical_to_direct_run_sweep(capsys, tmp_path):
    # The acceptance criterion: a JSON spec run via the CLI produces
    # results bit-identical to the same grid through legacy run_sweep
    # with hand-built factories.
    import json

    from repro.core.scc_2s import SCC2S
    from repro.experiments.config import baseline_config
    from repro.experiments.runner import run_sweep
    from repro.protocols.occ_bc import OCCBroadcastCommit

    path, _ = _write_smoke_spec(tmp_path)
    assert main(["run", str(path), "--format", "json"]) == 0
    records = json.loads(capsys.readouterr().out)
    config = baseline_config(
        num_transactions=120, warmup_commits=12, replications=1,
        arrival_rates=(60.0, 120.0),
    )
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        legacy = run_sweep(
            {"SCC-2S": SCC2S, "OCC-BC": OCCBroadcastCommit}, config
        )
    by_cell = {
        (r["protocol"], r["arrival_rate"], r["replication"]): r["summary"]
        for r in records
    }
    assert len(by_cell) == len(records) == 4
    for name, sweep in legacy.items():
        for rate, summaries in zip(sweep.arrival_rates, sweep.replications):
            for replication, summary in enumerate(summaries):
                assert by_cell[(name, rate, replication)] == summary.to_dict()


def test_run_with_store_reuses_cells(capsys, tmp_path):
    path, _ = _write_smoke_spec(
        tmp_path, store=str(tmp_path / "runs.jsonl")
    )
    assert main(["run", str(path)]) == 0
    first = capsys.readouterr().out
    assert main(["run", str(path)]) == 0
    second = capsys.readouterr().out
    assert (tmp_path / "runs.jsonl").exists()
    # Bit-identical tables whether cells were computed or served from
    # the store (the wall-clock status line differs, so strip it).
    strip = lambda text: [
        line for line in text.splitlines() if not line.startswith("[spec")
    ]
    assert strip(first) == strip(second)


def test_run_flag_overrides_spec(capsys, tmp_path):
    path, _ = _write_smoke_spec(tmp_path)
    assert main(["run", str(path), "--rates", "80", "--transactions", "60"]) == 0
    out = capsys.readouterr().out
    assert "60 txns" in out
    assert "80.000" in out
    assert "120.000" not in out


def test_run_without_spec_path_rejected():
    with pytest.raises(SystemExit, match="needs a spec file"):
        main(["run"])


def test_run_with_missing_file_rejected(tmp_path):
    with pytest.raises(SystemExit, match="cannot read"):
        main(["run", str(tmp_path / "absent.json")])


def test_run_rejects_scenario_flag(tmp_path):
    path, _ = _write_smoke_spec(tmp_path)
    with pytest.raises(SystemExit, match="names its scenario"):
        main(["run", str(path), "--scenario", "paper-baseline"])


def test_action_only_for_results_and_run():
    with pytest.raises(SystemExit, match="only applies"):
        main(["fig13a", "list"])


def test_unknown_results_action_rejected():
    with pytest.raises(SystemExit, match="unknown results action"):
        main(["results", "explode", "--store", "x.jsonl"])
