"""Tests for the CLI's store/format/results surface."""

import csv
import io
import json

import pytest

from repro.experiments.cli import main
from repro.results import RunStore, SQLiteRunStore, open_store
from repro.results.record import RunRecord

REDUCED = ["--transactions", "120", "--replications", "1", "--rates", "60,120"]


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


def test_store_flag_persists_and_resumes(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    argv = ["fig13a", *REDUCED, "--store", store_path]
    code, cold_out = run_cli(argv, capsys)
    assert code == 0
    assert "0/8 cells reused, 8 computed" in cold_out
    assert len(RunStore(store_path)) == 8
    code, warm_out = run_cli(argv, capsys)
    assert code == 0
    assert "8/8 cells reused, 0 computed" in warm_out
    # Identical tables (modulo the timing-dependent status line).
    strip = lambda text: [l for l in text.splitlines() if not l.startswith("[")]
    assert strip(cold_out) == strip(warm_out)


def test_format_json_emits_canonical_records(capsys):
    code, out = run_cli(
        ["fig13a", "--transactions", "120", "--replications", "1",
         "--rates", "60", "--format", "json"],
        capsys,
    )
    assert code == 0
    payloads = json.loads(out)
    assert len(payloads) == 4  # fig13's four protocols, one rate, one rep
    records = [RunRecord.from_dict(p) for p in payloads]
    assert {r.protocol for r in records} == {
        "SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"
    }
    assert all(r.arrival_rate == 60.0 for r in records)


def test_format_csv_emits_flat_rows(capsys):
    code, out = run_cli(
        ["fig13a", "--transactions", "120", "--replications", "1",
         "--rates", "60", "--format", "csv"],
        capsys,
    )
    assert code == 0
    rows = list(csv.reader(io.StringIO(out)))
    assert rows[0][0] == "fingerprint"
    assert len(rows) == 5  # header + four protocols


def test_results_list_renders_store(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    run_cli(["fig13a", *REDUCED, "--store", store_path], capsys)
    code, out = run_cli(["results", "list", "--store", store_path], capsys)
    assert code == 0
    assert "8 record(s)" in out
    assert "SCC-2S" in out and "2PL-PA" in out


def test_results_export_csv(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    run_cli(["fig13a", *REDUCED, "--store", store_path], capsys)
    code, out = run_cli(
        ["results", "export", "--store", store_path, "--format", "csv"], capsys
    )
    assert code == 0
    rows = list(csv.reader(io.StringIO(out)))
    assert len(rows) == 9  # header + 8 cells


def test_results_diff_clean_and_drifted(tmp_path, capsys):
    store_a = str(tmp_path / "a.jsonl")
    run_cli(["fig13a", *REDUCED, "--store", store_a], capsys)
    store_b = str(tmp_path / "b.jsonl")
    records = RunStore(store_a).records()
    with RunStore(store_b) as store:
        store.extend(records[:-1])  # drop one cell
    code, out = run_cli(
        ["results", "diff", "--store", store_a, "--against", store_b], capsys
    )
    assert code == 1  # coverage mismatch is a difference too
    assert "identical cells : 7" in out
    assert "only in A       : 1" in out
    # Equal stores diff clean.
    code, out = run_cli(
        ["results", "diff", "--store", store_a, "--against", store_a], capsys
    )
    assert code == 0
    assert "identical cells : 8" in out
    # Now corrupt one metric in B: diff must flag it and exit nonzero.
    import dataclasses

    drifted = dataclasses.replace(
        records[-1],
        summary=dataclasses.replace(records[-1].summary, missed_ratio=99.0),
    )
    with RunStore(store_b) as store:
        store.append(drifted)
    code, out = run_cli(
        ["results", "diff", "--store", store_a, "--against", store_b], capsys
    )
    assert code == 1
    assert "changed cells   : 1" in out
    assert "missed_ratio" in out


def test_format_json_with_store_serves_stored_records(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    argv = ["fig13a", "--transactions", "120", "--replications", "1",
            "--rates", "60", "--store", store_path, "--format", "json"]
    code, out = run_cli(argv, capsys)
    assert code == 0
    records = [RunRecord.from_dict(p) for p in json.loads(out)]
    # Stored records carry the cells' real wall-clock, not the 0.0 the
    # in-memory export path would fabricate.
    assert all(r.elapsed > 0 for r in records)
    # Warm re-run exports the identical stored records.
    code, warm_out = run_cli(argv, capsys)
    assert code == 0
    assert json.loads(warm_out) == json.loads(out)


def test_scenario_flag_stamps_stored_records(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    code, _ = run_cli(
        ["fig14a", "--scenario", "flash-sale-hotspot", "--transactions", "120",
         "--replications", "1", "--rates", "100", "--store", store_path],
        capsys,
    )
    assert code == 0
    records = RunStore(store_path).records()
    assert records
    assert all(r.scenario == "flash-sale-hotspot" for r in records)


def test_machine_formats_rejected_for_multi_document_commands():
    for command in ("all", "fig3", "scenarios"):
        with pytest.raises(SystemExit, match="not\\s+supported"):
            main([command, "--format", "json"])


def test_csv_output_has_unix_line_endings(capsys):
    code, out = run_cli(
        ["fig13a", "--transactions", "120", "--replications", "1",
         "--rates", "60", "--format", "csv"],
        capsys,
    )
    assert code == 0
    assert "\r" not in out


def test_results_without_store_errors():
    with pytest.raises(SystemExit, match="--store"):
        main(["results", "list"])


def test_action_on_non_results_command_errors():
    with pytest.raises(SystemExit, match="only applies"):
        main(["fig13a", "list"])


# ----------------------------------------------------------------------
# store backends, merge, compact
# ----------------------------------------------------------------------


def test_store_backend_flag_forces_sqlite(tmp_path, capsys):
    store_path = str(tmp_path / "runs.data")  # no telling extension
    argv = ["fig13a", *REDUCED, "--store", store_path,
            "--store-backend", "sqlite"]
    code, _ = run_cli(argv, capsys)
    assert code == 0
    store = open_store(store_path)  # sniffed by content, not extension
    assert isinstance(store, SQLiteRunStore)
    assert len(store) == 8
    store.close()
    # Warm re-run resumes from the sqlite store.
    code, warm_out = run_cli(argv, capsys)
    assert code == 0
    assert "8/8 cells reused, 0 computed" in warm_out


def test_results_commands_work_on_sqlite_stores(tmp_path, capsys):
    store_path = str(tmp_path / "runs.sqlite")
    run_cli(["fig13a", *REDUCED, "--store", store_path], capsys)
    code, out = run_cli(["results", "list", "--store", store_path], capsys)
    assert code == 0
    assert "8 record(s)" in out
    code, out = run_cli(
        ["results", "diff", "--store", store_path, "--against", store_path],
        capsys,
    )
    assert code == 0
    assert "identical cells : 8" in out


def test_results_merge_combines_shards(tmp_path, capsys):
    shard_a = str(tmp_path / "a.jsonl")
    shard_b = str(tmp_path / "b.sqlite")
    reference = str(tmp_path / "all.jsonl")
    run_cli(["fig13a", *REDUCED, "--rates", "60", "--store", shard_a], capsys)
    run_cli(["fig13a", *REDUCED, "--rates", "120", "--store", shard_b], capsys)
    run_cli(["fig13a", *REDUCED, "--store", reference], capsys)
    merged = str(tmp_path / "merged.jsonl")
    code, out = run_cli(
        ["results", "merge", "--store", merged,
         "--from", f"{shard_a},{shard_b}"],
        capsys,
    )
    assert code == 0
    assert "merged 8 record(s) from 2 shard(s)" in out
    # The merged store carries exactly the full-grid records.
    code, out = run_cli(
        ["results", "diff", "--store", merged, "--against", reference], capsys
    )
    assert code == 0
    assert "identical cells : 8" in out
    # Merging again is a no-op.
    code, out = run_cli(
        ["results", "merge", "--store", merged,
         "--from", f"{shard_a},{shard_b}"],
        capsys,
    )
    assert code == 0
    assert "merged 0 record(s)" in out


def test_results_merge_requires_from():
    with pytest.raises(SystemExit, match="--from"):
        main(["results", "merge", "--store", "whatever.jsonl"])


def test_from_flag_only_applies_to_merge(tmp_path):
    store_path = str(tmp_path / "runs.jsonl")
    RunStore(store_path).close()
    with pytest.raises(SystemExit, match="--from"):
        main(["results", "list", "--store", store_path, "--from", "a.jsonl"])


def test_results_compact_reports_dropped_rows(tmp_path, capsys):
    store_path = str(tmp_path / "runs.jsonl")
    run_cli(["fig13a", *REDUCED, "--store", store_path], capsys)
    with RunStore(store_path) as store:
        store.append(store.records()[0])  # superseded generation
    code, out = run_cli(["results", "compact", "--store", store_path], capsys)
    assert code == 0
    assert "dropped 1 superseded/corrupt row(s)" in out
    assert "8 record(s) kept" in out
    code, out = run_cli(["results", "compact", "--store", store_path], capsys)
    assert code == 0
    assert "dropped 0" in out


def test_unreadable_store_is_a_clean_cli_error(tmp_path):
    bad = tmp_path / "runs.sqlite"
    bad.write_text("not a database")
    # Without the explicit backend the content sniffer treats the file
    # as JSONL (all lines corrupt); forcing sqlite must fail cleanly.
    with pytest.raises(SystemExit, match="SQLite"):
        main(
            ["results", "list", "--store", str(bad),
             "--store-backend", "sqlite"]
        )
