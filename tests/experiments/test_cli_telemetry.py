"""Tests for the CLI's observability surface: trace, profile, logging."""

import pytest

from repro.experiments.cli import main


def write_spec(tmp_path, **overrides):
    from repro.experiments.spec import ExperimentSpec

    fields = dict(
        arrival_rates=(60.0,),
        replications=1,
        num_transactions=80,
        warmup_commits=8,
    )
    fields.update(overrides)
    spec = ExperimentSpec.create(["scc-2s"], **fields)
    path = tmp_path / "experiment.json"
    spec.save(path)
    return path


def traced_run(tmp_path, capsys):
    spec_path = write_spec(tmp_path)
    trace_path = tmp_path / "events.jsonl"
    assert main(["run", str(spec_path), "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    return trace_path


def test_run_trace_flag_writes_a_valid_trace(tmp_path, capsys):
    from repro.telemetry.events import is_marker, iter_trace, read_trace

    trace_path = traced_run(tmp_path, capsys)
    assert trace_path.exists()
    payloads = list(iter_trace(trace_path))
    assert any(is_marker(p) for p in payloads)
    events = list(read_trace(trace_path))  # validates every event line
    assert {"txn_start", "commit"} <= {e.kind for e in events}


def test_trace_summarize_reports_kind_counts(tmp_path, capsys):
    trace_path = traced_run(tmp_path, capsys)
    assert main(["trace", "summarize", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "txn_start" in out
    assert "commit" in out
    assert "1 cell(s)" in out


def test_trace_shorthand_defaults_to_summarize(tmp_path, capsys):
    trace_path = traced_run(tmp_path, capsys)
    assert main(["trace", str(trace_path)]) == 0
    assert "event kind" in capsys.readouterr().out


def test_trace_timeline_renders_lanes(tmp_path, capsys):
    trace_path = traced_run(tmp_path, capsys)
    assert main(["trace", "timeline", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "lane" in out
    assert "shadow#0" in out
    assert "C" in out  # at least one commit marker


def test_trace_command_argument_errors(tmp_path):
    with pytest.raises(SystemExit, match="needs a trace file"):
        main(["trace"])
    with pytest.raises(SystemExit, match="unknown trace action"):
        main(["trace", "explode", "some.jsonl"])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["trace", "summarize", str(tmp_path / "absent.jsonl")])


def test_trace_and_profile_flags_restricted_to_run(tmp_path):
    with pytest.raises(SystemExit, match="--trace only applies"):
        main(["fig13a", "--trace", str(tmp_path / "t.jsonl")])
    with pytest.raises(SystemExit, match="--profile only applies"):
        main(["fig13a", "--profile", str(tmp_path / "p.pstats")])


def test_path_positional_restricted_to_trace():
    with pytest.raises(SystemExit, match="only applies to the\\s+trace"):
        main(["results", "list", "extra-arg", "--store", "x.jsonl"])


def test_run_profile_flag_dumps_pstats(tmp_path, capsys):
    import pstats

    spec_path = write_spec(tmp_path)
    profile_path = tmp_path / "run.pstats"
    assert main(["run", str(spec_path), "--profile", str(profile_path)]) == 0
    capsys.readouterr()
    stats = pstats.Stats(str(profile_path))
    assert stats.total_calls > 0


def test_log_level_debug_shows_progress_and_quiet_silences(tmp_path, capsys):
    args = ["fig13a", "--transactions", "80", "--replications", "1",
            "--rates", "60"]
    assert main(args + ["--log-level", "info"]) == 0
    err = capsys.readouterr().err
    assert "running" in err  # per-cell progress notes flow via the logger
    assert main(args + ["--quiet"]) == 0
    captured = capsys.readouterr()
    assert "running" not in captured.err
    assert "Missed Ratio" in captured.out  # stdout output is untouched


def test_machine_format_status_goes_through_the_logger(capsys):
    args = ["fig13a", "--transactions", "80", "--replications", "1",
            "--rates", "60", "--format", "json"]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "txns x" in captured.err
    assert "txns x" not in captured.out
    assert main(args + ["--quiet"]) == 0
    assert "txns x" not in capsys.readouterr().err


def test_spec_log_level_applies_when_no_flag_given(tmp_path, capsys):
    spec_path = write_spec(tmp_path, telemetry={"log_level": "error"})
    assert main(["run", str(spec_path)]) == 0
    err = capsys.readouterr().err
    assert "running" not in err
