"""Unit tests for experiment configuration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    ExperimentConfig,
    baseline_class,
    baseline_config,
    two_class_config,
)


def test_baseline_matches_paper_parameters():
    config = baseline_config()
    assert config.num_pages == 1000
    cls = config.classes[0]
    assert cls.num_steps == 16
    assert cls.write_probability == 0.25
    assert cls.slack_factor == 2.0
    assert config.num_transactions == 4000
    assert config.confidence_level == 0.90
    assert 200 in config.arrival_rates or max(config.arrival_rates) == 200


def test_baseline_class_value_parameters():
    cls = baseline_class(alpha_degrees=45.0, value=1.0)
    assert cls.penalty_gradient == pytest.approx(1.0)


def test_two_class_mix_matches_one_class_mean():
    config = two_class_config()
    one, two = config.classes
    assert one.weight == pytest.approx(0.1)
    assert two.weight == pytest.approx(0.9)
    # Mix-weighted mean value and gradient equal the one-class setup.
    mean_value = 0.1 * one.value + 0.9 * two.value
    mean_gradient = 0.1 * one.penalty_gradient + 0.9 * two.penalty_gradient
    assert mean_value == pytest.approx(1.0)
    assert mean_gradient == pytest.approx(1.0)
    # Class 1 is long/tight/valuable/steep relative to class 2.
    assert one.num_steps > two.num_steps
    assert one.slack_factor < two.slack_factor
    assert one.value > two.value
    assert one.penalty_gradient > two.penalty_gradient


def test_scaled_copy():
    config = baseline_config()
    small = config.scaled(
        num_transactions=100, replications=1, arrival_rates=[50], warmup_commits=10
    )
    assert small.num_transactions == 100
    assert small.replications == 1
    assert small.arrival_rates == (50,)
    assert config.num_transactions == 4000  # original untouched


def test_step_duration():
    config = baseline_config()
    assert config.step_duration == pytest.approx(config.cpu_time + config.io_time)


def test_validation():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(classes=())
    with pytest.raises(ConfigurationError):
        baseline_config(num_transactions=100, warmup_commits=100)
    with pytest.raises(ConfigurationError):
        baseline_config(replications=0)
    with pytest.raises(ConfigurationError):
        baseline_config(arrival_rates=())
