"""Engine selection plumbing: spec field, CLI flag, fingerprint neutrality.

Engines are bit-identical by contract (see the parity and golden-array
suites), so the engine choice is *execution policy*: it must round-trip
through the spec JSON, be validated early, be overridable at run time —
and it must never leak into result identity.  A store populated under
one engine has to serve the other without recomputing a single cell.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main as cli_main
from repro.experiments.config import baseline_config
from repro.experiments.runner import run_sweep
from repro.experiments.spec import Experiment, ExperimentSpec
from repro.results.fingerprint import config_payload
from repro.results.store import RunStore

SMALL = baseline_config(
    num_transactions=80,
    warmup_commits=8,
    replications=1,
    arrival_rates=(60.0,),
    check_serializability=False,
)


# ----------------------------------------------------------------------
# ExperimentSpec field
# ----------------------------------------------------------------------


def test_engine_round_trips_through_json():
    spec = ExperimentSpec.create(["scc-2s"], engine="array")
    rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt.engine == "array"
    assert rebuilt == spec


def test_engine_defaults_to_none_and_stays_out_of_the_payload():
    spec = ExperimentSpec.create(["scc-2s"])
    assert spec.engine is None
    assert "engine" not in {
        k for k, v in spec.to_dict().items() if v is None
    } or spec.to_dict().get("engine") is None


def test_unknown_engine_rejected_at_construction():
    with pytest.raises(ConfigurationError, match="engine"):
        ExperimentSpec.create(["scc-2s"], engine="vector")


def test_builder_sets_engine_and_from_spec_copies_it():
    spec = Experiment.baseline().protocols("scc-2s").engine("array").build()
    assert spec.engine == "array"
    derived = Experiment.from_spec(spec).build()
    assert derived.engine == "array"


def test_spec_run_engine_kwarg_overrides_spec_field():
    spec = ExperimentSpec.create(
        ["scc-2s"],
        arrival_rates=(60.0,),
        num_transactions=80,
        warmup_commits=8,
        replications=1,
        engine="object",
    )
    via_field = spec.run()
    via_override = spec.run(engine="array")
    assert (
        via_field["SCC-2S"].replications
        == via_override["SCC-2S"].replications
    )


# ----------------------------------------------------------------------
# CLI flag
# ----------------------------------------------------------------------


def test_cli_engine_flag_is_bit_identical(capsys):
    args = ["fig13a", "--transactions", "80",
            "--replications", "1", "--rates", "100"]
    outputs = []
    for engine_args in ([], ["--engine", "array"]):
        assert cli_main(args + engine_args) == 0
        outputs.append(capsys.readouterr().out)
    # Identical tables modulo the trailing wall-clock status line, which
    # is timing-dependent (same idiom as the store/executor CLI tests).
    strip = lambda text: [l for l in text.splitlines() if not l.startswith("[")]
    assert strip(outputs[0]) == strip(outputs[1])


def test_cli_rejects_unknown_engine(capsys):
    with pytest.raises(SystemExit):
        cli_main(["fig13a", "--engine", "vector"])
    assert "invalid choice" in capsys.readouterr().err


# ----------------------------------------------------------------------
# fingerprint neutrality
# ----------------------------------------------------------------------


def test_config_payload_carries_no_engine_key():
    payload = config_payload(SMALL)
    assert "engine" not in payload


def test_store_populated_under_object_serves_array(tmp_path):
    path = tmp_path / "runs.jsonl"
    cold = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path, engine="object")
    assert len(RunStore(path)) == 1
    # Same grid under the array engine: every cell must come from the
    # store (record count unchanged), with bit-identical summaries.
    warm = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path, engine="array")
    assert len(RunStore(path)) == 1
    assert warm["SCC-2S"].replications == cold["SCC-2S"].replications


def test_store_populated_under_array_serves_object(tmp_path):
    path = tmp_path / "runs.jsonl"
    cold = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path, engine="array")
    warm = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path)
    assert len(RunStore(path)) == 1
    assert warm["SCC-2S"].replications == cold["SCC-2S"].replications
