"""Tests for the declarative experiment API: spec round-trips, builder,
legacy-equivalence, and spec-based store identity."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scc_2s import SCC2S
from repro.errors import ConfigurationError
from repro.experiments.config import baseline_config
from repro.experiments.runner import normalize_protocols, run_sweep
from repro.experiments.spec import SPEC_SCHEMA, Experiment, ExperimentSpec
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.protocols.registry import ProtocolSpec, parse_protocol_spec
from repro.results.backends import open_store
from repro.results.store import RunStore
from repro.workloads.scenarios import available_scenarios, get_scenario

SMOKE = dict(num_transactions=120, warmup_commits=12, replications=1)


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        protocols=("scc-2s", "occ-bc"),
        arrival_rates=(60.0, 140.0),
        replications=1,
        num_transactions=120,
        warmup_commits=12,
    )
    fields.update(overrides)
    protocols = fields.pop("protocols")
    return ExperimentSpec.create(protocols, **fields)


class TestSpecConstruction:
    def test_create_coerces_strings_and_dicts(self):
        spec = ExperimentSpec.create(
            ["scc-ks?k=3", {"family": "occ-bc"}, ProtocolSpec.create("serial")]
        )
        assert [p.family for p in spec.protocols] == [
            "scc-ks", "occ-bc", "serial",
        ]

    def test_needs_at_least_one_protocol(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ExperimentSpec(protocols=())

    def test_rejects_raw_strings_in_constructor(self):
        with pytest.raises(ConfigurationError, match="ProtocolSpec"):
            ExperimentSpec(protocols=("scc-2s",))

    def test_scenario_name_and_inline_def_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ExperimentSpec(
                protocols=(ProtocolSpec.create("scc-2s"),),
                scenario="paper-baseline",
                scenario_def=get_scenario("flash-sale-hotspot"),
            )

    def test_unknown_scenario_rejected_at_create(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            ExperimentSpec.create(["scc-2s"], scenario="black-friday")


class TestSerialization:
    def test_dict_round_trip(self):
        spec = small_spec(scenario="flash-sale-hotspot", store="runs.jsonl")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_through_disk(self, tmp_path):
        spec = small_spec(executor="process", workers=2, seed=7)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_inline_scenario_round_trips(self):
        spec = small_spec(scenario=get_scenario("bursty-telecom"))
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.scenario_def == get_scenario("bursty-telecom")

    def test_schema_is_stamped_and_checked(self):
        payload = small_spec().to_dict()
        assert payload["schema"] == SPEC_SCHEMA
        payload["schema"] = SPEC_SCHEMA + 1
        with pytest.raises(ConfigurationError, match="schema"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_keys_rejected(self):
        payload = small_spec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            ExperimentSpec.from_dict(payload)

    def test_minimal_shorthand_accepted(self):
        # Hand-written spec files may use compact protocol strings and
        # omit every optional key.
        spec = ExperimentSpec.from_dict({"protocols": ["scc-ks?k=3"]})
        assert spec.protocols == (parse_protocol_spec("scc-ks?k=3"),)
        assert spec.scenario is None

    def test_bad_json_reports_cleanly(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ExperimentSpec.load(path)

    def test_missing_file_reports_cleanly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ExperimentSpec.load(tmp_path / "absent.json")


# Property: from_dict(to_dict()) == spec over a broad slice of the space.
_SCENARIOS = st.one_of(st.none(), st.sampled_from(available_scenarios()))
_PROTOCOLS = st.lists(
    st.sampled_from(
        [
            "scc-2s",
            "occ",
            "occ-bc",
            "serial",
            "2pl-pa",
            "scc-ks?k=3",
            "scc-ks?k=none",
            "scc-vw?period=0.02",
            "wait-50?wait_threshold=0.25",
        ]
    ),
    min_size=1,
    max_size=4,
    unique=True,
)
_RATES = st.one_of(
    st.none(),
    st.lists(
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=5,
        unique=True,
    ),
)
_OPT_INT = st.one_of(st.none(), st.integers(min_value=1, max_value=10_000))


@settings(
    max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture]
)
@given(
    protocols=_PROTOCOLS,
    scenario=_SCENARIOS,
    rates=_RATES,
    replications=_OPT_INT,
    transactions=_OPT_INT,
    seed=_OPT_INT,
)
def test_property_spec_round_trips(
    protocols, scenario, rates, replications, transactions, seed
):
    spec = ExperimentSpec.create(
        protocols,
        scenario=scenario,
        arrival_rates=rates,
        replications=replications,
        num_transactions=transactions,
        seed=seed,
    )
    assert ExperimentSpec.from_dict(json.loads(spec.to_json())) == spec


class TestBuilder:
    def test_issue_style_chain_builds_the_expected_spec(self):
        spec = (
            Experiment.scenario("flash-sale-hotspot")
            .protocols("scc-2s", "occ-bc")
            .rates(20, 120, step=20)
            .replications(10)
            .store("runs.jsonl")
            .build()
        )
        assert spec.scenario == "flash-sale-hotspot"
        assert spec.arrival_rates == (20.0, 40.0, 60.0, 80.0, 100.0, 120.0)
        assert spec.replications == 10
        assert spec.store == "runs.jsonl"
        assert [p.label for p in spec.protocols] == ["SCC-2S", "OCC-BC"]

    def test_rates_explicit_points(self):
        spec = Experiment.baseline().protocols("serial").rates(40, 100, 160).build()
        assert spec.arrival_rates == (40.0, 100.0, 160.0)

    def test_rates_step_validation(self):
        with pytest.raises(ConfigurationError, match="exactly two"):
            Experiment.baseline().rates(1, 2, 3, step=1)
        with pytest.raises(ConfigurationError, match="step must be"):
            Experiment.baseline().rates(1, 2, step=-1)
        with pytest.raises(ConfigurationError, match="at least one"):
            Experiment.baseline().rates()

    def test_scenario_accepts_inline_scenario(self):
        scenario = get_scenario("diurnal-oltp")
        spec = Experiment.scenario(scenario).protocols("occ").build()
        assert spec.scenario is None
        assert spec.scenario_def == scenario

    def test_executor_and_workers(self):
        spec = (
            Experiment.baseline()
            .protocols("occ")
            .executor("process", workers=4)
            .build()
        )
        assert spec.executor == "process"
        assert spec.workers == 4

    def test_from_spec_round_trips_through_builder(self):
        original = small_spec(scenario="trace-replay", executor="serial")
        assert Experiment.from_spec(original).build() == original


class TestToConfig:
    def test_baseline_defaults(self):
        config = ExperimentSpec.create(["scc-2s"]).to_config()
        assert config == baseline_config()

    def test_spec_fields_override_scenario_defaults(self):
        spec = small_spec(scenario="flash-sale-hotspot", seed=7)
        config = spec.to_config()
        assert config.seed == 7
        assert config.num_transactions == 120
        assert config.arrival_rates == (60.0, 140.0)
        assert config.workload == get_scenario(
            "flash-sale-hotspot"
        ).workload_spec()

    def test_keyword_overrides_beat_spec_fields(self):
        config = small_spec().to_config(num_transactions=64, warmup_commits=6)
        assert config.num_transactions == 64

    def test_paper_two_class_scenario_matches_two_class_config(self):
        from repro.experiments.config import two_class_config

        config = get_scenario("paper-two-class").to_config()
        legacy = two_class_config()
        assert config.classes == legacy.classes
        assert config.num_pages == legacy.num_pages


class TestRunEquivalence:
    def test_spec_run_bit_identical_to_legacy_run_sweep(self):
        config = baseline_config(**SMOKE, arrival_rates=(60.0, 140.0))
        with pytest.warns(DeprecationWarning, match="protocol factories"):
            legacy = run_sweep(
                {"SCC-2S": SCC2S, "OCC-BC": OCCBroadcastCommit}, config
            )
        spec_results = small_spec().run()
        assert set(legacy) == set(spec_results)
        for name in legacy:
            assert (
                legacy[name].replications == spec_results[name].replications
            ), name

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ExperimentSpec.create(["scc-2s", "scc-ks?k=2"]).run()

    def test_run_kwargs_override_spec_policy(self, tmp_path):
        store_path = tmp_path / "runs.jsonl"
        spec = small_spec(store=str(tmp_path / "ignored.jsonl"))
        spec.run(store=str(store_path))
        assert store_path.exists()
        assert not (tmp_path / "ignored.jsonl").exists()


class TestNormalizeProtocols:
    def test_sequence_of_specs_labels_itself(self):
        factories, specs = normalize_protocols(["scc-ks?k=3", "occ-bc"])
        assert list(factories) == ["SCC-3S", "OCC-BC"]
        assert specs["SCC-3S"] == parse_protocol_spec("scc-ks?k=3")

    def test_mapping_with_legacy_factories_keeps_name_identity(self):
        with pytest.warns(DeprecationWarning, match="protocol factories"):
            factories, specs = normalize_protocols({"SCC-2S": SCC2S})
        assert factories["SCC-2S"] is SCC2S
        assert specs["SCC-2S"] is None

    def test_mapping_label_wins_over_spec_label(self):
        factories, specs = normalize_protocols({"mine": "scc-ks?k=3"})
        assert list(factories) == ["mine"]
        assert specs["mine"].family == "scc-ks"

    def test_bare_factory_without_label_rejected(self):
        with pytest.warns(DeprecationWarning, match="protocol factories"):
            with pytest.raises(ConfigurationError, match="needs a label"):
                normalize_protocols([SCC2S])

    def test_uninterpretable_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            normalize_protocols({"x": 42})

    def test_empty_roster_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            normalize_protocols({})


class TestSpecStoreIdentity:
    """Satellite regression: parameterized variants never share cells."""

    def test_k2_and_k3_never_share_cached_cells(self, tmp_path):
        store_path = str(tmp_path / "runs.jsonl")
        spec_k2 = ExperimentSpec.create(
            ["scc-ks?k=2"], arrival_rates=(80.0,), **SMOKE
        )
        spec_k3 = ExperimentSpec.create(
            ["scc-ks?k=3"], arrival_rates=(80.0,), **SMOKE
        )
        spec_k2.run(store=store_path)
        store = RunStore(store_path)
        assert len(store) == 1
        store.close()
        # The k=3 variant must compute fresh cells, not reuse k=2's.
        spec_k3.run(store=store_path)
        store = RunStore(store_path)
        assert len(store) == 2
        fingerprints = {record.fingerprint for record in store.records()}
        assert len(fingerprints) == 2
        store.close()

    def test_same_label_different_params_still_distinct(self, tmp_path):
        # The exact trap the registry closes: both variants labelled
        # identically (the pre-registry collision) still fingerprint by
        # their full spec, so the second run recomputes.
        store_path = str(tmp_path / "runs.jsonl")
        config = baseline_config(**SMOKE, arrival_rates=(80.0,))
        run_sweep({"SCC": "scc-ks?k=2"}, config, store=store_path)
        run_sweep({"SCC": "scc-ks?k=3"}, config, store=store_path)
        store = RunStore(store_path)
        records = list(store.records())
        assert len(records) == 2
        assert (
            records[0].protocol_spec["params"]["k"]
            != records[1].protocol_spec["params"]["k"]
        )
        store.close()

    def test_rerun_of_same_spec_reuses_every_cell(self, tmp_path):
        store_path = str(tmp_path / "runs.jsonl")
        spec = small_spec(store=store_path)
        first = spec.run()
        before = RunStore(store_path)
        count = len(before)
        before.close()
        second = spec.run()
        after = RunStore(store_path)
        assert len(after) == count  # nothing recomputed
        after.close()
        for name in first:
            assert first[name].replications == second[name].replications

    def test_stored_records_carry_protocol_specs(self, tmp_path):
        store_path = str(tmp_path / "runs.jsonl")
        small_spec(protocols=("scc-ks?k=3",)).run(store=store_path)
        store = RunStore(store_path)
        record = next(iter(store.records()))
        assert record.protocol == "SCC-3S"
        assert record.protocol_spec == {
            "family": "scc-ks",
            "params": {"k": 3, "replacement": "lbfo"},
        }
        store.close()


def test_normalize_protocols_accepts_a_bare_spec():
    # A single spec string (or spec/dict) is a one-protocol roster, not
    # a sequence to iterate character by character.
    for bare in ("scc-ks?k=3", parse_protocol_spec("scc-ks?k=3"),
                 {"family": "scc-ks", "params": {"k": 3}}):
        factories, specs = normalize_protocols(bare)
        assert list(factories) == ["SCC-3S"]
        assert specs["SCC-3S"] == parse_protocol_spec("scc-ks?k=3")


def test_save_is_atomic(tmp_path, monkeypatch):
    # save() routes through the repo's atomic JSON writer, so a crash
    # mid-write can never leave a torn spec file behind.
    calls = []
    import repro.results.store as store_mod

    real = store_mod.write_json_atomic
    monkeypatch.setattr(
        store_mod, "write_json_atomic",
        lambda path, payload: calls.append(path) or real(path, payload),
    )
    path = tmp_path / "spec.json"
    spec = small_spec()
    spec.save(path)
    assert calls == [path]
    assert ExperimentSpec.load(path) == spec


def test_builder_constructors_refuse_mid_chain_calls():
    # Experiment.scenario()/baseline()/from_spec() start a NEW builder;
    # calling them on an instance would silently discard the chain's
    # accumulated state, so it must raise instead.  AttributeError keeps
    # hasattr()-style introspection working.
    chain = Experiment.baseline().protocols("scc-2s").rates(40, 160)
    for name in ("scenario", "baseline", "from_spec"):
        with pytest.raises(AttributeError, match="starts a new"):
            getattr(chain, name)
        assert not hasattr(chain, name)


def test_rates_step_rejects_swapped_bounds():
    with pytest.raises(ConfigurationError, match="start <= stop"):
        Experiment.baseline().rates(160, 40, step=20)


class TestStoreBackend:
    def test_round_trips_through_json(self):
        spec = small_spec(store="runs.data", store_backend="sqlite")
        rebuilt = ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert rebuilt == spec
        assert rebuilt.store_backend == "sqlite"

    def test_defaults_to_none(self):
        spec = small_spec(store="runs.jsonl")
        assert spec.store_backend is None
        assert "store_backend" in spec.to_dict()

    def test_rejects_unknown_backends(self):
        with pytest.raises(ConfigurationError, match="store backend"):
            small_spec(store="runs.data", store_backend="parquet")

    def test_builder_sets_backend_with_store(self):
        spec = (
            Experiment.baseline()
            .protocols("occ")
            .store("runs.data", backend="sqlite")
            .build()
        )
        assert spec.store == "runs.data"
        assert spec.store_backend == "sqlite"
        assert Experiment.from_spec(spec).build() == spec

    def test_run_creates_the_requested_backend(self, tmp_path):
        path = str(tmp_path / "runs.data")
        spec = small_spec(
            replications=1,
            arrival_rates=(60.0,),
            protocols=("scc-2s",),
            store=path,
            store_backend="sqlite",
        )
        spec.run()
        store = open_store(path)
        assert store.backend == "sqlite"
        assert len(store) == 1
        store.close()

    def test_run_override_beats_the_spec_field(self, tmp_path):
        path = str(tmp_path / "runs.data")
        spec = small_spec(
            replications=1,
            arrival_rates=(60.0,),
            protocols=("scc-2s",),
            store=path,
        )
        spec.run(store_backend="sqlite")
        store = open_store(path)
        assert store.backend == "sqlite"
        store.close()
