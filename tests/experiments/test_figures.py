"""Smoke tests for the per-figure experiment definitions (reduced scale)."""

import pytest

from repro.experiments import figures
from repro.experiments.config import baseline_config, two_class_config

TINY = baseline_config(
    num_transactions=150,
    warmup_commits=10,
    replications=1,
    arrival_rates=(60.0, 120.0),
)
TINY_TWO = two_class_config(
    num_transactions=150,
    warmup_commits=10,
    replications=1,
    arrival_rates=(60.0,),
)


def test_fig13_protocol_set():
    assert set(figures.fig13_protocols()) == {
        "SCC-2S",
        "OCC-BC",
        "WAIT-50",
        "2PL-PA",
    }


def test_fig14_protocol_set():
    assert set(figures.fig14_protocols()) == {
        "SCC-VW",
        "SCC-2S",
        "OCC-BC",
        "WAIT-50",
    }


def test_run_fig13_reduced():
    results = figures.run_fig13(TINY)
    assert set(results) == set(figures.fig13_protocols())
    for sweep in results.values():
        missed = sweep.missed_ratio()
        assert len(missed) == 2
        assert all(0.0 <= m <= 100.0 for m in missed)
        tardiness = sweep.avg_tardiness()
        assert all(t >= 0.0 for t in tardiness)


def test_run_fig14a_reduced():
    results = figures.run_fig14a(TINY.scaled(arrival_rates=[80.0]))
    for sweep in results.values():
        values = sweep.system_value()
        assert len(values) == 1
        assert values[0] <= 100.0


def test_run_fig14b_two_classes():
    results = figures.run_fig14b(TINY_TWO)
    assert "SCC-VW" in results
    for sweep in results.values():
        assert len(sweep.system_value()) == 1


def test_ablation_k_monotone_protocol_set():
    factories = figures.ablation_k_protocols(ks=(1, 2, None))
    assert set(factories) == {"SCC-1S", "SCC-2S", "SCC-CB (k=inf)"}
    # Factories must produce fresh instances.
    a = factories["SCC-2S"]()
    b = factories["SCC-2S"]()
    assert a is not b


def test_ablation_replacement_runs():
    results = figures.run_ablation_replacement(
        TINY.scaled(arrival_rates=[100.0]), k=3
    )
    assert set(results) == {"LBFO", "deadline-aware", "value-aware"}


def test_ablation_wait_threshold_runs():
    results = figures.run_ablation_wait_threshold(
        TINY.scaled(arrival_rates=[100.0]), thresholds=(0.5, 1.0)
    )
    assert set(results) == {"OCC-BC (no wait)", "WAIT-50", "WAIT-100"}


def test_ablation_resources_runs():
    results = figures.run_ablation_resources(
        TINY.scaled(arrival_rates=[60.0]),
        arrival_rate=60.0,
        server_counts=(2, None),
    )
    assert any("servers=2" in key for key in results)
    assert any("servers=inf" in key for key in results)
