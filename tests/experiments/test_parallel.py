"""Tests for the parallel sweep execution subsystem.

Covers the satellite checklist: worker-count edge cases (0/1/N), per-cell
exception isolation, deterministic reassembly, and serial/parallel result
equality under fixed seeds.
"""

import pytest

from repro.errors import ConfigurationError, SweepExecutionError
from repro.experiments.config import baseline_config
from repro.experiments.parallel import (
    CellError,
    ProcessSweepExecutor,
    ProgressReporter,
    SerialSweepExecutor,
    SweepCell,
    available_executors,
    make_executor,
    resolve_executor,
)
from repro.experiments.runner import build_cells, run_sweep

SMALL = baseline_config(
    num_transactions=120,
    warmup_commits=10,
    replications=2,
    arrival_rates=(40.0, 80.0),
    check_serializability=False,
)
PROTOCOLS = {"SCC-2S": "scc-2s", "OCC-BC": "occ-bc"}


def _cells(n):
    return build_cells(["P"], [float(10 * (i + 1)) for i in range(n)], 1)


def _square(cell):
    return cell.arrival_rate**2


# ----------------------------------------------------------------------
# executor construction / registry
# ----------------------------------------------------------------------


def test_worker_count_zero_rejected():
    with pytest.raises(ConfigurationError):
        ProcessSweepExecutor(workers=0)


def test_negative_workers_rejected():
    with pytest.raises(ConfigurationError):
        ProcessSweepExecutor(workers=-3)


def test_zero_chunk_size_rejected():
    with pytest.raises(ConfigurationError):
        ProcessSweepExecutor(chunk_size=0)


def test_registry_names():
    assert available_executors() == ("distributed", "process", "serial")
    assert isinstance(make_executor("serial"), SerialSweepExecutor)
    assert isinstance(make_executor("process", workers=2), ProcessSweepExecutor)
    with pytest.raises(ConfigurationError):
        make_executor("threads")


def test_serial_executor_refuses_worker_count():
    # "--executor serial --workers 8" is a misconfiguration, not a request
    # to quietly run on one core.
    with pytest.raises(ConfigurationError):
        make_executor("serial", workers=8)
    assert isinstance(make_executor("serial", workers=1), SerialSweepExecutor)


def test_resolve_rejects_nonpositive_workers():
    # Without this, `--workers 0` / negative counts would silently fall
    # back to the serial executor instead of flagging the typo.
    with pytest.raises(ConfigurationError):
        resolve_executor(None, workers=0)
    with pytest.raises(ConfigurationError):
        resolve_executor("serial", workers=-2)


def test_resolve_executor_defaults():
    assert isinstance(resolve_executor(None), SerialSweepExecutor)
    # workers > 1 implies the process pool...
    resolved = resolve_executor(None, workers=3)
    assert isinstance(resolved, ProcessSweepExecutor)
    assert resolved.workers == 3
    # ...workers == 1 stays serial.
    assert isinstance(resolve_executor(None, workers=1), SerialSweepExecutor)
    # Instances pass through unchanged.
    executor = ProcessSweepExecutor(workers=2)
    assert resolve_executor(executor) is executor


# ----------------------------------------------------------------------
# cell execution semantics
# ----------------------------------------------------------------------


def test_empty_grid():
    assert ProcessSweepExecutor(workers=2).run([], _square) == []
    assert SerialSweepExecutor().run([], _square) == []


def test_one_worker_degenerate_pool():
    outcomes = ProcessSweepExecutor(workers=1).run(_cells(5), _square)
    assert [o.summary for o in outcomes] == [100.0, 400.0, 900.0, 1600.0, 2500.0]


def test_more_workers_than_cells():
    outcomes = ProcessSweepExecutor(workers=16).run(_cells(3), _square)
    assert [o.summary for o in outcomes] == [100.0, 400.0, 900.0]


def test_deterministic_cell_ordering():
    # Tiny chunks maximize out-of-order completion; reassembly must still
    # return outcomes in cell-index order.
    executor = ProcessSweepExecutor(workers=4, chunk_size=1)
    outcomes = executor.run(_cells(12), _square)
    assert [o.cell.index for o in outcomes] == list(range(12))


def test_per_cell_exception_isolation():
    def flaky(cell):
        if cell.arrival_rate == 30.0:
            raise ValueError("boom at 30 tps")
        return cell.arrival_rate

    # run() completes every cell; only the crashed one carries an error.
    for executor in (SerialSweepExecutor(), ProcessSweepExecutor(workers=2)):
        outcomes = executor.run(_cells(4), flaky)
        assert [o.ok for o in outcomes] == [True, True, False, True]
        failed = outcomes[2]
        assert failed.summary is None
        assert failed.error.exc_type == "ValueError"
        assert "boom at 30 tps" in failed.error.message
        assert "ValueError" in failed.error.traceback


def test_progress_events_monotonic_with_eta():
    events = []
    SerialSweepExecutor().run(_cells(3), _square, on_progress=events.append)
    completed = [e for e in events if e.kind == "completed"]
    assert [e.completed for e in completed] == [1, 2, 3]
    assert all(e.total == 3 for e in events)
    assert all(e.eta is not None for e in completed)
    assert completed[-1].eta == pytest.approx(0.0)


def test_progress_reporter_formats_lines(capsys):
    import sys

    reporter = ProgressReporter(stream=sys.stderr)
    SerialSweepExecutor().run(_cells(2), _square, on_progress=reporter)
    err = capsys.readouterr().err
    assert "[1/2]" in err and "[2/2]" in err
    assert "eta=" in err


# ----------------------------------------------------------------------
# run_sweep integration
# ----------------------------------------------------------------------


def test_parallel_sweep_equals_serial():
    serial = run_sweep(PROTOCOLS, SMALL, executor="serial")
    parallel = run_sweep(PROTOCOLS, SMALL, executor="process", workers=4)
    assert set(serial) == set(parallel)
    for name in serial:
        # RunSummary is a plain dataclass: == compares every metric field,
        # so this asserts bit-identical summaries, not approximate ones.
        assert serial[name].replications == parallel[name].replications
        assert serial[name].arrival_rates == parallel[name].arrival_rates


def test_workers_kwarg_alone_selects_process_pool():
    via_workers = run_sweep(PROTOCOLS, SMALL, workers=2)
    serial = run_sweep(PROTOCOLS, SMALL)
    for name in PROTOCOLS:
        assert via_workers[name].replications == serial[name].replications


def test_sweep_failures_aggregate():
    class Exploding:
        name = "EXPLODING"

        def __getattr__(self, attr):
            raise RuntimeError("protocol cannot run")

    # Exploding is not registry-representable, so it stays a legacy
    # factory and run_sweep warns about it before the cells execute.
    protocols = {"SCC-2S": "scc-2s", "BAD": Exploding}
    config = SMALL.scaled(num_transactions=60, warmup_commits=5,
                          replications=1, arrival_rates=[40.0])
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        with pytest.raises(SweepExecutionError) as excinfo:
            run_sweep(protocols, config, executor="process", workers=2)
    failures = excinfo.value.failures
    # The good protocol's cell ran to completion; only BAD's cell failed.
    assert [f.cell.protocol for f in failures] == ["BAD"]
    assert "RuntimeError" in str(excinfo.value)


def test_legacy_progress_fires_on_completion_in_parallel():
    calls = []
    run_sweep(
        {"SCC-2S": "scc-2s"},
        SMALL.scaled(num_transactions=40, warmup_commits=2, replications=1,
                     arrival_rates=[30.0, 60.0]),
        progress=lambda name, rate, rep: calls.append((name, rate, rep)),
        executor="process",
        workers=2,
    )
    assert sorted(calls) == [("SCC-2S", 30.0, 0), ("SCC-2S", 60.0, 0)]


def test_cell_error_from_exception_captures_chain():
    try:
        raise KeyError("missing-protocol")
    except KeyError as exc:
        record = CellError.from_exception(exc)
    assert record.exc_type == "KeyError"
    assert "missing-protocol" in record.message
    assert "KeyError" in record.traceback


def test_build_cells_serial_order():
    cells = build_cells(["A", "B"], [10.0, 20.0], 2)
    assert len(cells) == 8
    assert [c.index for c in cells] == list(range(8))
    assert cells[0].protocol == "A" and cells[-1].protocol == "B"
    # protocol-major, then rate, then replication
    assert [(c.protocol, c.arrival_rate, c.replication) for c in cells[:4]] == [
        ("A", 10.0, 0), ("A", 10.0, 1), ("A", 20.0, 0), ("A", 20.0, 1),
    ]


def test_sweep_cell_describe():
    cell = SweepCell(index=0, protocol="SCC-2S", rate_index=1,
                     arrival_rate=70.0, replication=2)
    assert "SCC-2S" in cell.describe()
    assert "70" in cell.describe()
