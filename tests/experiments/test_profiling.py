"""Tests for execution-time profiling (§3.2 statistics collection)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.profiling import OnlineProfiler, profile_classes
from repro.values.distributions import EmpiricalExecution
from tests.conftest import make_class


class TestOnlineProfiler:
    def test_observe_and_fit(self):
        profiler = OnlineProfiler()
        for sample in (1.0, 2.0, 3.0):
            profiler.observe("a", sample)
        assert profiler.sample_count("a") == 3
        dist = profiler.distribution("a")
        assert isinstance(dist, EmpiricalExecution)
        assert dist.mean() == pytest.approx(2.0)

    def test_classes_are_isolated(self):
        profiler = OnlineProfiler()
        profiler.observe("a", 1.0)
        profiler.observe("b", 9.0)
        assert profiler.distribution("a").mean() == pytest.approx(1.0)
        assert profiler.distribution("b").mean() == pytest.approx(9.0)

    def test_missing_class_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineProfiler().distribution("ghost")

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineProfiler().observe("a", 0.0)


class TestProfileClasses:
    def test_deterministic_class_profiles_to_its_runtime(self):
        cls = make_class(name="fixed", num_steps=8)
        [profiled] = profile_classes(
            [cls], num_pages=64, step_duration=0.01, transactions=50
        )
        assert profiled.execution is not None
        # Serial, uncontended: execution time is exactly 8 steps x 10 ms.
        assert profiled.execution.mean() == pytest.approx(0.08, rel=1e-6)
        assert profiled.execution.survival(0.079) == 1.0
        assert profiled.execution.survival(0.081) == 0.0

    def test_mix_profiles_each_class(self):
        short = make_class(name="short", num_steps=4, weight=0.5)
        long = make_class(name="long", num_steps=12, weight=0.5)
        profiled = profile_classes(
            [short, long], num_pages=64, step_duration=0.01, transactions=80
        )
        by_name = {cls.name: cls for cls in profiled}
        assert by_name["short"].execution.mean() == pytest.approx(0.04)
        assert by_name["long"].execution.mean() == pytest.approx(0.12)

    def test_profiled_classes_feed_scc_dc(self):
        from repro.core.scc_dc import SCCDC
        from repro.engine.rng import RandomStreams
        from repro.system.model import RTDBSystem
        from repro.txn.generator import WorkloadGenerator

        [profiled] = profile_classes(
            [make_class(name="p", num_steps=6)],
            num_pages=64,
            step_duration=0.01,
            transactions=30,
        )
        generator = WorkloadGenerator(
            classes=[profiled],
            num_pages=64,
            arrival_rate=40.0,
            step_duration=0.01,
            streams=RandomStreams(3),
        )
        system = RTDBSystem(protocol=SCCDC(period=0.02), num_pages=64)
        system.load_workload(generator.generate(60))
        system.run()
        assert system.committed_count == 60

    def test_too_small_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_classes(
                [make_class(), make_class(name="b")],
                num_pages=64,
                step_duration=0.01,
                transactions=1,
            )


class TestCaptureProfile:
    def test_returns_result_and_report(self):
        from repro.experiments.profiling import capture_profile

        result, report = capture_profile(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert "function calls" in report

    def test_propagates_exceptions(self):
        from repro.experiments.profiling import capture_profile

        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError):
            capture_profile(boom)

    def test_dump_to_writes_loadable_pstats(self, tmp_path):
        import pstats

        from repro.experiments.profiling import capture_profile

        dump = tmp_path / "profile.pstats"
        result, report = capture_profile(
            lambda: sum(range(1000)), dump_to=dump
        )
        assert result == sum(range(1000))
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0
