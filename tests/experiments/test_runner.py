"""Tests for the sweep runner (variance reduction, CI plumbing)."""

import pytest

from repro.core.scc_2s import SCC2S
from repro.experiments.config import baseline_config
from repro.experiments.runner import run_once, run_sweep
from repro.protocols.occ_bc import OCCBroadcastCommit


SMALL = baseline_config(
    num_transactions=120,
    warmup_commits=10,
    replications=2,
    arrival_rates=(40.0, 80.0),
)


def test_run_once_returns_summary():
    summary = run_once(SCC2S, SMALL, arrival_rate=60.0)
    assert summary.committed == 110  # 120 minus warmup
    assert 0.0 <= summary.missed_ratio <= 100.0


def test_same_replication_same_results():
    a = run_once(SCC2S, SMALL, arrival_rate=60.0, replication=0)
    b = run_once(SCC2S, SMALL, arrival_rate=60.0, replication=0)
    assert a.missed_ratio == b.missed_ratio
    assert a.system_value == b.system_value


def test_different_replications_differ():
    a = run_once(OCCBroadcastCommit, SMALL, arrival_rate=60.0, replication=0)
    b = run_once(OCCBroadcastCommit, SMALL, arrival_rate=60.0, replication=1)
    # Same config, independent seeds: response profiles should differ.
    assert a.avg_response_time != b.avg_response_time


def test_sweep_shapes_and_metrics():
    results = run_sweep(
        {"SCC-2S": "scc-2s", "OCC-BC": "occ-bc"}, SMALL
    )
    assert set(results) == {"SCC-2S", "OCC-BC"}
    sweep = results["SCC-2S"]
    assert sweep.arrival_rates == (40.0, 80.0)
    assert len(sweep.replications) == 2
    assert all(len(reps) == 2 for reps in sweep.replications)
    assert len(sweep.missed_ratio()) == 2
    cis = sweep.confidence(lambda s: s.missed_ratio)
    assert all(ci.n == 2 for ci in cis)


def test_progress_callback_invoked():
    calls = []
    run_sweep(
        {"Serial": "serial"},
        SMALL.scaled(num_transactions=40, warmup_commits=2, replications=1,
                     arrival_rates=[30.0]),
        progress=lambda name, rate, rep: calls.append((name, rate, rep)),
    )
    assert calls == [("Serial", 30.0, 0)]


def test_protocols_see_identical_workload_per_cell():
    # Variance reduction: the workload stream depends only on (seed,
    # replication), not on the protocol -- verified indirectly by running
    # a conflict-free-ish protocol pair and comparing commit counts.
    a = run_once(SCC2S, SMALL, arrival_rate=40.0, replication=0)
    b = run_once(OCCBroadcastCommit, SMALL, arrival_rate=40.0, replication=0)
    assert a.committed == b.committed
