"""Sweep-level telemetry: the event bus, trace files, and spec plumbing."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import baseline_config
from repro.experiments.runner import run_sweep
from repro.experiments.spec import Experiment, ExperimentSpec
from repro.results import RunStore
from repro.telemetry.events import TraceEvent, is_marker, iter_trace

SCALE = dict(
    num_transactions=80,
    warmup_commits=8,
    replications=1,
    arrival_rates=(60.0, 120.0),
    check_serializability=False,
)


def smoke_config():
    return baseline_config(**SCALE)


def test_on_event_publishes_the_full_sweep_lifecycle():
    events = []
    results = run_sweep(
        {"SCC-2S": "scc-2s"}, smoke_config(), on_event=events.append,
    )
    assert results["SCC-2S"].replications
    kinds = [event.kind for event in events]
    # Serial executor: started + completed + outcome per cell, in order.
    assert kinds.count("cell_started") == 2
    assert kinds.count("cell_completed") == 2
    assert kinds.count("cell_outcome") == 2
    outcomes = [event for event in events if event.kind == "cell_outcome"]
    for event in outcomes:
        assert event.payload["ok"] is True
        assert event.payload["cached"] is False
        assert event.payload["summary"]["committed"] > 0
        telemetry = event.payload["telemetry"]
        assert telemetry["counters"]["commits"] > 0
        assert telemetry["wall_clock"] > 0
        json.dumps(event.to_dict())  # stream must stay JSON-ready


def test_store_cells_replay_on_the_bus_as_cached(tmp_path):
    store_path = tmp_path / "runs.jsonl"
    run_sweep({"SCC-2S": "scc-2s"}, smoke_config(), store=store_path)
    events = []
    run_sweep(
        {"SCC-2S": "scc-2s"}, smoke_config(), store=store_path,
        on_event=events.append,
    )
    outcomes = [e for e in events if e.kind == "cell_outcome"]
    assert len(outcomes) == 2
    assert all(e.payload["cached"] for e in outcomes)
    # Cached outcomes carry the stored telemetry block back too.
    assert all(e.payload["telemetry"] is not None for e in outcomes)


def test_store_records_carry_telemetry(tmp_path):
    store_path = tmp_path / "runs.jsonl"
    run_sweep({"SCC-2S": "scc-2s"}, smoke_config(), store=store_path)
    records = RunStore(store_path).records()
    assert records
    for record in records:
        telemetry = record.telemetry
        assert telemetry["schema"] == 1
        assert telemetry["counters"]["arrivals"] >= telemetry["counters"]["commits"]
        assert telemetry["events_fired"] > 0


def test_trace_writes_markers_and_valid_events(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    run_sweep({"SCC-2S": "scc-2s"}, smoke_config(), trace=trace_path)
    markers, events = [], []
    for payload in iter_trace(trace_path):
        if is_marker(payload):
            markers.append(payload)
        else:
            events.append(TraceEvent.from_dict(payload))  # validates
    assert [m["marker"] for m in markers] == ["cell_start", "cell_start"]
    assert markers[0]["protocol"] == "SCC-2S"
    assert {m["arrival_rate"] for m in markers} == {60.0, 120.0}
    assert events
    kinds = {event.kind for event in events}
    assert {"txn_start", "commit", "shadow_fork"} <= kinds


def test_trace_lanes_restart_at_cell_boundaries(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    run_sweep({"SCC-2S": "scc-2s"}, smoke_config(), trace=trace_path)
    cell_min_lanes = []
    current: list = []
    for payload in iter_trace(trace_path):
        if is_marker(payload):
            if current:
                cell_min_lanes.append(min(current))
            current = []
        elif payload["lane"] is not None:
            current.append(payload["lane"])
    if current:
        cell_min_lanes.append(min(current))
    assert cell_min_lanes == [0, 0]


def test_trace_requires_the_serial_executor(tmp_path):
    with pytest.raises(ConfigurationError, match="serial"):
        run_sweep(
            {"SCC-2S": "scc-2s"}, smoke_config(),
            trace=tmp_path / "trace.jsonl", executor="process", workers=2,
        )


# ----------------------------------------------------------------------
# ExperimentSpec telemetry block
# ----------------------------------------------------------------------


def test_spec_telemetry_round_trips_through_json():
    spec = ExperimentSpec.create(
        ["scc-2s"], telemetry={"trace": "events.jsonl", "log_level": "debug"},
    )
    rebuilt = ExperimentSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.telemetry == {"trace": "events.jsonl", "log_level": "debug"}


def test_spec_rejects_malformed_telemetry():
    with pytest.raises(ConfigurationError, match="telemetry keys"):
        ExperimentSpec.create(["scc-2s"], telemetry={"tracing": "x"})
    with pytest.raises(ConfigurationError, match="log_level"):
        ExperimentSpec.create(["scc-2s"], telemetry={"log_level": "loud"})
    with pytest.raises(ConfigurationError, match="must be a dict"):
        ExperimentSpec.create(["scc-2s"], telemetry="events.jsonl")


def test_builder_telemetry_method_and_from_spec_copy():
    spec = (
        Experiment.baseline()
        .protocols("scc-2s")
        .telemetry(trace="events.jsonl")
        .telemetry(log_level="warning")
        .build()
    )
    assert spec.telemetry == {"trace": "events.jsonl", "log_level": "warning"}
    derived = Experiment.from_spec(spec).build()
    assert derived.telemetry == spec.telemetry


def test_spec_run_uses_the_telemetry_trace_path(tmp_path):
    trace_path = tmp_path / "spec-trace.jsonl"
    spec = ExperimentSpec.create(
        ["scc-2s"],
        arrival_rates=(60.0,),
        num_transactions=80,
        warmup_commits=8,
        replications=1,
        telemetry={"trace": str(trace_path)},
    )
    results = spec.run()
    assert results["SCC-2S"].replications
    assert trace_path.exists()
    assert any(not is_marker(p) for p in iter_trace(trace_path))


def test_spec_run_trace_kwarg_overrides_the_spec(tmp_path):
    spec_path = tmp_path / "spec-trace.jsonl"
    override_path = tmp_path / "override-trace.jsonl"
    spec = ExperimentSpec.create(
        ["scc-2s"],
        arrival_rates=(60.0,),
        num_transactions=80,
        warmup_commits=8,
        replications=1,
        telemetry={"trace": str(spec_path)},
    )
    spec.run(trace=override_path)
    assert override_path.exists()
    assert not spec_path.exists()
