"""Shared helpers for the gateway tests: tiny specs and in-process servers."""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager

import pytest

from repro.gateway import GatewayApp, GatewayServer


def tiny_spec_dict(**overrides) -> dict:
    """A fast two-cell experiment spec (one rate, one replication)."""
    spec = {
        "schema": 1,
        "protocols": ["scc-2s", "occ-bc"],
        "arrival_rates": [60.0],
        "replications": 1,
        "num_transactions": 40,
        "warmup_commits": 4,
        "seed": 7,
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def make_app(tmp_path):
    """Factory building gateway apps over a store in ``tmp_path``.

    Every app built is drained and closed at teardown, so tests never
    leak worker threads.
    """
    apps = []

    def build(store_name: str = "store.jsonl", **kwargs) -> GatewayApp:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("workdir", str(tmp_path / f"work-{len(apps)}"))
        app = GatewayApp(store=str(tmp_path / store_name), **kwargs)
        apps.append(app)
        return app

    yield build
    for app in apps:
        app.close()


@contextmanager
def running_server(app: GatewayApp):
    """Serve ``app`` on a background thread; yields the bound server.

    Shuts the server down (draining the app) on exit.
    """
    server = GatewayServer(app, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await server.start()
            started.set()
            await server.run()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "gateway server failed to start"
    try:
        yield server
    finally:
        if not loop.is_closed():  # a test may have shut the server down
            try:
                loop.call_soon_threadsafe(server.request_shutdown)
            except RuntimeError:
                pass
        thread.join(30)
