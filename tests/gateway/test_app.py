"""GatewayApp behavior: submit, dedup, quotas, breaker degradation, drain."""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.gateway import (
    CircuitBreaker,
    ClientQuotas,
    GatewayApp,
    GatewayDraining,
    QuotaExceeded,
    UnknownExperiment,
)

from tests.gateway.conftest import tiny_spec_dict


def wait_done(app: GatewayApp, experiment_id: str, timeout: float = 60.0) -> str:
    status = app._get(experiment_id).wait(timeout=timeout)
    assert status != "running", "experiment did not finish in time"
    return status


class TestSubmit:
    def test_runs_an_experiment_to_done(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        assert status["total_cells"] == 2
        assert status["enqueued_cells"] == 2
        assert wait_done(app, status["id"]) == "done"
        final = app.status(status["id"])
        assert final["completed"] == 2
        assert final["failed"] == []
        assert len(app.results(status["id"])) == 2

    def test_event_stream_shape(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, status["id"])
        events, done = app.events_since(status["id"], 0)
        assert done
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "experiment_accepted"
        assert kinds[-1] == "experiment_done"
        assert kinds.count("cell_started") == 2
        assert kinds.count("cell_completed") == 2
        assert kinds.count("cell_outcome") == 2
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert all(e["ok"] and not e["cached"] for e in outcomes)
        assert all(e["summary"] is not None for e in outcomes)

    def test_cursor_pagination(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, status["id"])
        head, _ = app.events_since(status["id"], 0)
        tail, done = app.events_since(status["id"], len(head) - 1)
        assert done
        assert tail == head[-1:]

    def test_invalid_spec_rejected_before_any_state(self, make_app):
        app = make_app()
        with pytest.raises(ConfigurationError):
            app.submit({"schema": 1, "protocols": []}, client="alice")
        assert app.list_experiments() == []
        assert app.quotas.snapshot() == {}

    def test_unknown_experiment_raises(self, make_app):
        app = make_app()
        with pytest.raises(UnknownExperiment):
            app.status("missing")
        with pytest.raises(UnknownExperiment):
            app.events_since("missing", 0)


class TestDedup:
    def test_resubmission_is_fully_cached(self, make_app):
        app = make_app()
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        stored = len(app.results(first["id"]))
        second = app.submit(tiny_spec_dict(), client="bob")
        # Every cell served from the store: terminal synchronously.
        assert second["status"] == "done"
        assert second["cached_cells"] == 2
        assert second["enqueued_cells"] == 0
        events, _ = app.events_since(second["id"], 0)
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert len(outcomes) == 2 and all(e["cached"] for e in outcomes)
        assert len(app.results(second["id"])) == stored

    def test_in_flight_cells_are_shared_not_recomputed(self, make_app):
        release = threading.Event()
        app = make_app(fault_hook=lambda cell: release.wait(30))
        first = app.submit(tiny_spec_dict(), client="alice")
        second = app.submit(tiny_spec_dict(), client="bob")
        # Bob's grid is already in flight for alice: nothing re-enqueued.
        assert second["enqueued_cells"] == 0
        assert second["shared_cells"] + second["cached_cells"] == 2
        release.set()
        assert wait_done(app, first["id"]) == "done"
        assert wait_done(app, second["id"]) == "done"
        # One record per cell, not one per client.
        with app._store_lock:
            assert len(app._store) == 2
        events, _ = app.events_since(second["id"], 0)
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert len(outcomes) == 2 and all(e["cached"] for e in outcomes)

    def test_cached_cells_do_not_charge_quota(self, make_app):
        app = make_app(quotas=ClientQuotas(max_queued_cells=2))
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        # 2 cached cells cost nothing, so a 2-cell cap still admits them.
        second = app.submit(tiny_spec_dict(), client="alice")
        assert second["status"] == "done"


class TestQuotas:
    def test_over_quota_client_rejected_others_undisturbed(self, make_app):
        release = threading.Event()
        app = make_app(
            quotas=ClientQuotas(max_experiments=1),
            fault_hook=lambda cell: release.wait(30),
        )
        running = app.submit(tiny_spec_dict(), client="alice")
        with pytest.raises(QuotaExceeded):
            app.submit(tiny_spec_dict(seed=99), client="alice")
        # Bob has his own budget and is admitted.
        other = app.submit(tiny_spec_dict(seed=42), client="bob")
        release.set()
        assert wait_done(app, running["id"]) == "done"
        assert wait_done(app, other["id"]) == "done"

    def test_experiment_slot_released_on_completion(self, make_app):
        app = make_app(quotas=ClientQuotas(max_experiments=1))
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        second = app.submit(tiny_spec_dict(seed=9), client="alice")
        assert wait_done(app, second["id"]) == "done"


class TestBreaker:
    def test_failing_worker_parks_and_experiment_degrades(self, make_app):
        def explode(cell):
            raise RuntimeError("poisoned cell")

        app = make_app(
            workers=1,
            breaker=CircuitBreaker(failure_threshold=2),
            fault_hook=explode,
        )
        spec = tiny_spec_dict(
            protocols=["scc-2s", "occ-bc", "wait-50"], replications=2
        )
        status = app.submit(spec, client="alice")
        assert wait_done(app, status["id"]) == "partial"
        final = app.status(status["id"])
        # 2 real failures trip the breaker; the rest degrade without
        # running.  Every cell is accounted for, none computed.
        assert final["completed"] == final["total_cells"] == 6
        assert len(final["failed"]) == 6
        assert len(app.results(status["id"])) == 0
        events, _ = app.events_since(status["id"], 0)
        kinds = [event["kind"] for event in events]
        assert "worker_lost" in kinds
        degraded = [
            e for e in events
            if e["kind"] == "cell_outcome"
            and e.get("error", {}).get("type") == "GatewayDegraded"
        ]
        assert len(degraded) == 4
        health = app.health()
        assert health["workers"]["gw-0"]["state"] == "parked"
        assert health["breaker"]["gw-0"]["state"] == "open"

    def test_success_keeps_the_circuit_closed(self, make_app):
        app = make_app(workers=1, breaker=CircuitBreaker(failure_threshold=2))
        status = app.submit(tiny_spec_dict(), client="alice")
        assert wait_done(app, status["id"]) == "done"
        assert app.health()["workers"]["gw-0"]["state"] in ("idle", "busy")


class TestDrain:
    def test_drain_finishes_leased_cells_and_rejects_submissions(
        self, make_app
    ):
        started = threading.Event()
        release = threading.Event()

        def hold(cell):
            started.set()
            release.wait(30)

        app = make_app(workers=1, fault_hook=hold)
        status = app.submit(tiny_spec_dict(), client="alice")
        assert started.wait(10)
        drained = threading.Thread(target=app.drain)
        drained.start()
        deadline = time.monotonic() + 10
        while not app.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(GatewayDraining):
            app.submit(tiny_spec_dict(seed=5), client="bob")
        release.set()
        drained.join(30)
        assert not drained.is_alive()
        # The leased cell finished and persisted; the rest stayed queued
        # on the board, and the experiment was marked interrupted.
        final = app.status(status["id"])
        assert final["status"] == "interrupted"
        assert 1 <= final["completed"] < final["total_cells"]
        assert len(app.results(status["id"])) == final["completed"]
        events, done = app.events_since(status["id"], 0)
        assert done
        assert events[-1]["kind"] == "experiment_interrupted"

    def test_drain_is_idempotent(self, make_app):
        app = make_app()
        app.drain()
        app.drain()
        assert app.health()["status"] == "draining"
