"""GatewayApp behavior: submit, dedup, quotas, breaker degradation, drain."""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.gateway import (
    CircuitBreaker,
    ClientQuotas,
    GatewayApp,
    GatewayDraining,
    QuotaExceeded,
    UnknownExperiment,
)

from tests.gateway.conftest import tiny_spec_dict


def wait_done(app: GatewayApp, experiment_id: str, timeout: float = 60.0) -> str:
    status = app._get(experiment_id).wait(timeout=timeout)
    assert status != "running", "experiment did not finish in time"
    return status


class TestSubmit:
    def test_runs_an_experiment_to_done(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        assert status["total_cells"] == 2
        assert status["enqueued_cells"] == 2
        assert wait_done(app, status["id"]) == "done"
        final = app.status(status["id"])
        assert final["completed"] == 2
        assert final["failed"] == []
        assert len(app.results(status["id"])) == 2

    def test_event_stream_shape(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, status["id"])
        events, done = app.events_since(status["id"], 0)
        assert done
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "experiment_accepted"
        assert kinds[-1] == "experiment_done"
        assert kinds.count("cell_started") == 2
        assert kinds.count("cell_completed") == 2
        assert kinds.count("cell_outcome") == 2
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert all(e["ok"] and not e["cached"] for e in outcomes)
        assert all(e["summary"] is not None for e in outcomes)

    def test_cursor_pagination(self, make_app):
        app = make_app()
        status = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, status["id"])
        head, _ = app.events_since(status["id"], 0)
        tail, done = app.events_since(status["id"], len(head) - 1)
        assert done
        assert tail == head[-1:]

    def test_invalid_spec_rejected_before_any_state(self, make_app):
        app = make_app()
        with pytest.raises(ConfigurationError):
            app.submit({"schema": 1, "protocols": []}, client="alice")
        assert app.list_experiments() == []
        assert app.quotas.snapshot() == {}

    def test_unknown_experiment_raises(self, make_app):
        app = make_app()
        with pytest.raises(UnknownExperiment):
            app.status("missing")
        with pytest.raises(UnknownExperiment):
            app.events_since("missing", 0)


class TestDedup:
    def test_resubmission_is_fully_cached(self, make_app):
        app = make_app()
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        stored = len(app.results(first["id"]))
        second = app.submit(tiny_spec_dict(), client="bob")
        # Every cell served from the store: terminal synchronously.
        assert second["status"] == "done"
        assert second["cached_cells"] == 2
        assert second["enqueued_cells"] == 0
        events, _ = app.events_since(second["id"], 0)
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert len(outcomes) == 2 and all(e["cached"] for e in outcomes)
        assert len(app.results(second["id"])) == stored

    def test_in_flight_cells_are_shared_not_recomputed(self, make_app):
        release = threading.Event()
        app = make_app(fault_hook=lambda cell: release.wait(30))
        first = app.submit(tiny_spec_dict(), client="alice")
        second = app.submit(tiny_spec_dict(), client="bob")
        # Bob's grid is already in flight for alice: nothing re-enqueued.
        assert second["enqueued_cells"] == 0
        assert second["shared_cells"] + second["cached_cells"] == 2
        release.set()
        assert wait_done(app, first["id"]) == "done"
        assert wait_done(app, second["id"]) == "done"
        # One record per cell, not one per client.
        with app._store_lock:
            assert len(app._store) == 2
        events, _ = app.events_since(second["id"], 0)
        outcomes = [e for e in events if e["kind"] == "cell_outcome"]
        assert len(outcomes) == 2 and all(e["cached"] for e in outcomes)

    def test_cached_cells_do_not_charge_quota(self, make_app):
        app = make_app(quotas=ClientQuotas(max_queued_cells=2))
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        # 2 cached cells cost nothing, so a 2-cell cap still admits them.
        second = app.submit(tiny_spec_dict(), client="alice")
        assert second["status"] == "done"


class TestQuotas:
    def test_over_quota_client_rejected_others_undisturbed(self, make_app):
        release = threading.Event()
        app = make_app(
            quotas=ClientQuotas(max_experiments=1),
            fault_hook=lambda cell: release.wait(30),
        )
        running = app.submit(tiny_spec_dict(), client="alice")
        with pytest.raises(QuotaExceeded):
            app.submit(tiny_spec_dict(seed=99), client="alice")
        # Bob has his own budget and is admitted.
        other = app.submit(tiny_spec_dict(seed=42), client="bob")
        release.set()
        assert wait_done(app, running["id"]) == "done"
        assert wait_done(app, other["id"]) == "done"

    def test_experiment_slot_released_on_completion(self, make_app):
        app = make_app(quotas=ClientQuotas(max_experiments=1))
        first = app.submit(tiny_spec_dict(), client="alice")
        wait_done(app, first["id"])
        second = app.submit(tiny_spec_dict(seed=9), client="alice")
        assert wait_done(app, second["id"]) == "done"


class TestBreaker:
    def test_failing_worker_parks_and_experiment_degrades(self, make_app):
        def explode(cell):
            raise RuntimeError("poisoned cell")

        app = make_app(
            workers=1,
            breaker=CircuitBreaker(failure_threshold=2),
            fault_hook=explode,
        )
        spec = tiny_spec_dict(
            protocols=["scc-2s", "occ-bc", "wait-50"], replications=2
        )
        status = app.submit(spec, client="alice")
        assert wait_done(app, status["id"]) == "partial"
        final = app.status(status["id"])
        # 2 real failures trip the breaker; the rest degrade without
        # running.  Every cell is accounted for, none computed.
        assert final["completed"] == final["total_cells"] == 6
        assert len(final["failed"]) == 6
        assert len(app.results(status["id"])) == 0
        events, _ = app.events_since(status["id"], 0)
        kinds = [event["kind"] for event in events]
        assert "worker_lost" in kinds
        degraded = [
            e for e in events
            if e["kind"] == "cell_outcome"
            and e.get("error", {}).get("type") == "GatewayDegraded"
        ]
        assert len(degraded) == 4
        health = app.health()
        assert health["workers"]["gw-0"]["state"] == "parked"
        assert health["breaker"]["gw-0"]["state"] == "open"

    def test_success_keeps_the_circuit_closed(self, make_app):
        app = make_app(workers=1, breaker=CircuitBreaker(failure_threshold=2))
        status = app.submit(tiny_spec_dict(), client="alice")
        assert wait_done(app, status["id"]) == "done"
        assert app.health()["workers"]["gw-0"]["state"] in ("idle", "busy")

    def test_cooldown_breaker_half_opens_and_recovers(self, make_app):
        failing = threading.Event()
        failing.set()

        def flaky(cell):
            if failing.is_set():
                raise RuntimeError("transient poison")

        app = make_app(
            workers=1,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_seconds=0.1),
            fault_hook=flaky,
        )
        first = app.submit(tiny_spec_dict(protocols=["scc-2s"]), client="alice")
        assert wait_done(app, first["id"]) == "partial"
        deadline = time.monotonic() + 10
        while app.health()["workers"]["gw-0"]["state"] != "parked":
            assert time.monotonic() < deadline, "worker never parked"
            time.sleep(0.01)
        # The park is temporary: new work waits for the half-open probe
        # instead of degrading to synthetic failures.
        failing.clear()
        second = app.submit(tiny_spec_dict(seed=11), client="alice")
        assert wait_done(app, second["id"]) == "done"
        health = app.health()
        assert health["breaker"]["gw-0"]["state"] == "closed"
        assert health["workers"]["gw-0"]["state"] in ("idle", "busy")
        assert app.status(second["id"])["failed"] == []


class TestDrain:
    def test_drain_finishes_leased_cells_and_rejects_submissions(
        self, make_app
    ):
        started = threading.Event()
        release = threading.Event()

        def hold(cell):
            started.set()
            release.wait(30)

        app = make_app(workers=1, fault_hook=hold)
        status = app.submit(tiny_spec_dict(), client="alice")
        assert started.wait(10)
        drained = threading.Thread(target=app.drain)
        drained.start()
        deadline = time.monotonic() + 10
        while not app.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(GatewayDraining):
            app.submit(tiny_spec_dict(seed=5), client="bob")
        release.set()
        drained.join(30)
        assert not drained.is_alive()
        # The leased cell finished and persisted; the rest stayed queued
        # on the board, and the experiment was marked interrupted.
        final = app.status(status["id"])
        assert final["status"] == "interrupted"
        assert 1 <= final["completed"] < final["total_cells"]
        assert len(app.results(status["id"])) == final["completed"]
        events, done = app.events_since(status["id"], 0)
        assert done
        assert events[-1]["kind"] == "experiment_interrupted"

    def test_drain_is_idempotent(self, make_app):
        app = make_app()
        app.drain()
        app.drain()
        assert app.health()["status"] == "draining"

    def test_health_after_drain_reports_closed_store_and_board(self, make_app):
        app = make_app()
        app.drain()
        health = app.health()
        assert health["status"] == "draining"
        assert health["store"] is None
        assert health["board"] is None


class TestRecovery:
    def test_replacement_instance_adopts_pending_cells(self, tmp_path):
        workdir = str(tmp_path / "work")
        store_path = str(tmp_path / "store.jsonl")
        started = threading.Event()
        release = threading.Event()

        def hold(cell):
            started.set()
            release.wait(30)

        first = GatewayApp(
            store=store_path, workers=1, workdir=workdir, fault_hook=hold
        )
        try:
            status = first.submit(tiny_spec_dict(), client="alice")
            assert started.wait(10)
            drained = threading.Thread(target=first.drain)
            drained.start()
            # Workers stop claiming once the stop flag is up, so exactly
            # the leased cell finishes and the rest stay pending.
            deadline = time.monotonic() + 10
            while not first._stop.is_set():
                assert time.monotonic() < deadline, "drain never started"
                time.sleep(0.01)
            release.set()
            drained.join(30)
            assert not drained.is_alive()
            interrupted = first.status(status["id"])
            assert interrupted["status"] == "interrupted"
            orphans = interrupted["total_cells"] - interrupted["completed"]
            assert orphans >= 1
        finally:
            first.close()

        # A replacement instance on the same workdir adopts the orphans
        # under their original experiment id and runs them to completion.
        second = GatewayApp(store=store_path, workers=1, workdir=workdir)
        try:
            recovered = second.status(status["id"])
            assert recovered["client"] == "alice"
            assert recovered["total_cells"] == orphans
            assert recovered["enqueued_cells"] == orphans
            assert wait_done(second, status["id"]) == "done"
            events, done = second.events_since(status["id"], 0)
            assert done
            assert events[0]["kind"] == "experiment_recovered"
            assert events[-1]["kind"] == "experiment_done"
            kinds = [event["kind"] for event in events]
            assert kinds.count("cell_outcome") == orphans
            # Both instances' cells landed in the shared store: the
            # whole grid now replays from cache.
            resubmit = second.submit(tiny_spec_dict(), client="carol")
            assert resubmit["status"] == "done"
            assert resubmit["cached_cells"] == interrupted["total_cells"]
            # The board is fully resolved: no orphan left to busy-spin on.
            with second._lock:
                counts = second._board.counts()
            assert counts["pending"] == 0 and counts["claimed"] == 0
        finally:
            second.close()

    def test_undecodable_orphan_payloads_are_failed_not_spun(self, tmp_path):
        from repro.experiments.distributed import JobBoard

        workdir = tmp_path / "work"
        workdir.mkdir()
        board = JobBoard(workdir / "board.sqlite")
        # A pre-recovery board format: no spec to rebuild from.
        board.add(0, {"experiment": "deadbeef", "fingerprint": "ff" * 16,
                      "cell": {"index": 0, "protocol": "scc-2s",
                               "arrival_rate": 60.0, "replication": 0}})
        board.close()
        app = GatewayApp(
            store=str(tmp_path / "store.jsonl"), workers=1,
            workdir=str(workdir),
        )
        try:
            assert app.list_experiments() == []
            with app._lock:
                counts = app._board.counts()
            assert counts["failed"] == 1
            assert counts["pending"] == 0
        finally:
            app.close()
