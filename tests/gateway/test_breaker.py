"""Unit tests for the worker circuit breaker."""

import pytest

from repro.gateway.breaker import BREAKER_STATES, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_allows_work(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.allow("w0")
        assert not breaker.is_open("w0")

    def test_opens_at_consecutive_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure("w0")
        assert not breaker.record_failure("w0")
        assert breaker.record_failure("w0")  # the tripping failure
        assert breaker.is_open("w0")
        assert not breaker.allow("w0")

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("w0")
        breaker.record_success("w0")
        assert not breaker.record_failure("w0")  # streak restarted at 1
        assert breaker.record_failure("w0")

    def test_permanent_park_without_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure("w0")
        clock.advance(1e9)
        assert not breaker.allow("w0")  # no cooldown: parked forever

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10, clock=clock
        )
        breaker.record_failure("w0")
        assert not breaker.allow("w0")
        clock.advance(10)
        assert breaker.allow("w0")  # the half-open probe
        breaker.record_success("w0")
        assert breaker.allow("w0")
        assert breaker.snapshot()["w0"]["state"] == "closed"

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5, clock=clock
        )
        for _ in range(3):
            breaker.record_failure("w0")
        clock.advance(5)
        assert breaker.allow("w0")
        # One failure suffices in half-open, threshold notwithstanding.
        assert breaker.record_failure("w0")
        assert not breaker.allow("w0")

    def test_workers_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("w0")
        assert not breaker.allow("w0")
        assert breaker.allow("w1")

    def test_reset_closes_the_circuit(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("w0")
        breaker.reset("w0")
        assert breaker.allow("w0")

    def test_snapshot_counts_trips(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1,
                                 clock=FakeClock())
        breaker.record_failure("w0")
        snap = breaker.snapshot()
        assert snap["w0"]["trips"] == 1
        assert snap["w0"]["state"] in BREAKER_STATES

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=0)
