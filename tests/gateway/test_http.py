"""End-to-end HTTP tests: server, client, streams, quotas, drain.

Covers the acceptance contract: a spec submitted over HTTP produces
store contents bit-identical to ``spec.run`` of the same spec;
overlapping concurrent submissions from different clients share
fingerprinted cells (observable as ``cached=true`` on the event stream)
and never duplicate records in either store backend; an over-quota
client gets 429 without disturbing others; a drain answers 503.
"""

import threading

import pytest

from repro.experiments.spec import ExperimentSpec
from repro.gateway import ClientQuotas, GatewayClient, GatewayError
from repro.results import diff_records, open_store

from tests.gateway.conftest import running_server, tiny_spec_dict


class TestRoundTrip:
    def test_submit_stream_results(self, make_app):
        app = make_app()
        with running_server(app) as server:
            client = GatewayClient(port=server.port, client_id="alice")
            assert client.health()["status"] == "ok"
            accepted = client.submit(tiny_spec_dict())
            events = list(client.events(accepted["id"]))
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "experiment_accepted"
            assert kinds[-1] == "experiment_done"
            assert kinds.count("cell_outcome") == 2
            assert client.status(accepted["id"])["status"] == "done"
            assert len(client.results(accepted["id"])) == 2
            assert accepted["id"] in {
                e["id"] for e in client.list_experiments()
            }

    def test_store_bit_identical_to_direct_run(self, make_app, tmp_path):
        spec_dict = tiny_spec_dict()
        app = make_app("gateway-store.jsonl")
        with running_server(app) as server:
            client = GatewayClient(port=server.port, client_id="alice")
            accepted = client.submit(spec_dict)
            client.wait(accepted["id"])
        ExperimentSpec.from_dict(spec_dict).run(
            store=tmp_path / "direct-store.jsonl"
        )
        direct_store = open_store(tmp_path / "direct-store.jsonl")
        gateway_store = open_store(tmp_path / "gateway-store.jsonl")
        report = diff_records(gateway_store.records(), direct_store.records())
        assert report["changed"] == []
        assert report["only_a"] == []
        assert report["only_b"] == []
        assert report["identical"] == 2

    def test_http_errors(self, make_app):
        app = make_app()
        with running_server(app) as server:
            client = GatewayClient(port=server.port)
            with pytest.raises(GatewayError) as info:
                client.status("missing")
            assert info.value.status == 404
            with pytest.raises(GatewayError) as info:
                client.submit({"schema": 1, "protocols": []})
            assert info.value.status == 400
            with pytest.raises(GatewayError) as info:
                client._request("GET", "/nowhere")
            assert info.value.status == 404
            with pytest.raises(GatewayError) as info:
                client._request("POST", "/healthz", body={})
            assert info.value.status == 405
            with pytest.raises(GatewayError) as info:
                client._request("POST", "/experiments", body=None)
            assert info.value.status == 400  # empty body


@pytest.mark.parametrize("store_name", ["store.jsonl", "store.sqlite"])
class TestConcurrentClients:
    def test_overlapping_grids_share_cells_in_both_backends(
        self, make_app, tmp_path, store_name
    ):
        spec_dict = tiny_spec_dict()
        app = make_app(store_name, workers=2)
        with running_server(app) as server:
            alice = GatewayClient(port=server.port, client_id="alice")
            bob = GatewayClient(port=server.port, client_id="bob")
            finals = {}

            def submit_and_wait(client):
                accepted = client.submit(spec_dict)
                finals[client.client_id] = client.wait(accepted["id"])

            threads = [
                threading.Thread(target=submit_and_wait, args=(c,))
                for c in (alice, bob)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert all(f["status"] == "done" for f in finals.values())
            # Each fingerprint enqueued at most once across both clients:
            # the overlap was served cached or shared, never recomputed.
            enqueued = sum(f["enqueued_cells"] for f in finals.values())
            assert enqueued == 2
            shared = sum(
                f["cached_cells"] + f["shared_cells"] for f in finals.values()
            )
            assert shared == 2
            # And the second stream observes the dedup as cached=true.
            follower = min(finals.values(), key=lambda f: f["enqueued_cells"])
            events = list(alice.events(follower["id"]))
            outcomes = [e for e in events if e["kind"] == "cell_outcome"]
            assert len(outcomes) == 2 and all(e["cached"] for e in outcomes)
        # No duplicate records in the backend, whichever it is.
        store = open_store(tmp_path / store_name)
        assert len(store) == 2
        fingerprints = [record.fingerprint for record in store.records()]
        assert len(fingerprints) == len(set(fingerprints))


class TestQuotasOverHttp:
    def test_429_with_retry_after_leaves_others_undisturbed(self, make_app):
        app = make_app(
            quotas=ClientQuotas(submit_burst=1.0, submit_rate=0.001)
        )
        with running_server(app) as server:
            alice = GatewayClient(port=server.port, client_id="alice")
            bob = GatewayClient(port=server.port, client_id="bob")
            first = alice.submit(tiny_spec_dict())
            with pytest.raises(GatewayError) as info:
                alice.submit(tiny_spec_dict(seed=99))
            assert info.value.status == 429
            assert info.value.retry_after is not None
            # Bob's bucket is his own: admitted while alice is throttled.
            other = bob.submit(tiny_spec_dict(seed=42))
            assert alice.wait(first["id"])["status"] == "done"
            assert bob.wait(other["id"])["status"] == "done"


class TestDrainOverHttp:
    def test_shutdown_answers_503_then_stops(self, make_app):
        started = threading.Event()
        release = threading.Event()

        def hold(cell):
            started.set()
            release.wait(30)

        app = make_app(workers=1, fault_hook=hold)
        with running_server(app) as server:
            client = GatewayClient(port=server.port, client_id="alice")
            accepted = client.submit(tiny_spec_dict())
            assert started.wait(10)
            stream_events = []
            streamer = threading.Thread(
                target=lambda: stream_events.extend(
                    client.events(accepted["id"])
                )
            )
            streamer.start()
            server.request_shutdown()
            deadline_tries = 100
            while not app.draining and deadline_tries:
                deadline_tries -= 1
                threading.Event().wait(0.01)
            with pytest.raises(GatewayError) as info:
                client.submit(tiny_spec_dict(seed=5))
            assert info.value.status == 503
            release.set()
            streamer.join(30)
        # The open stream terminated cleanly at the interrupted marker.
        assert stream_events[-1]["kind"] == "experiment_interrupted"
