"""Unit tests for the gateway's per-client admission control."""

import pytest

from repro.gateway.quotas import ClientQuotas, QuotaExceeded, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, rate=1, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, rate=2, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 0.5s * 2/s = 1 token
        assert bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, rate=10, clock=clock)
        clock.advance(100)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, rate=0.5, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, rate=1)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, rate=0)


class TestClientQuotas:
    def make(self, **kwargs) -> tuple:
        clock = FakeClock()
        kwargs.setdefault("max_queued_cells", 10)
        kwargs.setdefault("max_experiments", 2)
        kwargs.setdefault("submit_burst", 100.0)
        kwargs.setdefault("submit_rate", 100.0)
        return ClientQuotas(clock=clock, **kwargs), clock

    def test_admits_within_limits(self):
        quotas, _ = self.make()
        quotas.admit("alice", 5)
        quotas.admit("alice", 5)

    def test_caps_concurrent_experiments(self):
        quotas, _ = self.make(max_experiments=1)
        quotas.admit("alice", 1)
        with pytest.raises(QuotaExceeded, match="1 experiment"):
            quotas.admit("alice", 1)
        quotas.experiment_finished("alice")
        quotas.admit("alice", 1)

    def test_caps_queued_cells(self):
        quotas, _ = self.make(max_queued_cells=8)
        quotas.admit("alice", 6)
        with pytest.raises(QuotaExceeded, match="enqueue 3"):
            quotas.admit("alice", 3)
        quotas.cell_finished("alice", count=6)
        quotas.admit("alice", 3)

    def test_rate_limit_sets_retry_after(self):
        quotas, clock = self.make(submit_burst=1.0, submit_rate=0.5)
        quotas.admit("alice", 0)
        with pytest.raises(QuotaExceeded) as info:
            quotas.admit("alice", 0)
        assert info.value.retry_after == pytest.approx(2.0)
        clock.advance(2.0)
        quotas.experiment_finished("alice")
        quotas.admit("alice", 0)

    def test_rejection_charges_nothing(self):
        quotas, _ = self.make(max_queued_cells=5, max_experiments=5)
        with pytest.raises(QuotaExceeded):
            quotas.admit("alice", 6)
        # The failed submission spent neither an experiment slot nor a
        # token: a within-limits retry goes straight through.
        quotas.admit("alice", 5)
        assert quotas.snapshot()["alice"] == {
            "experiments": 1,
            "queued_cells": 5,
        }

    def test_clients_are_independent(self):
        quotas, _ = self.make(max_experiments=1)
        quotas.admit("alice", 1)
        quotas.admit("bob", 1)  # alice's charge does not touch bob
        with pytest.raises(QuotaExceeded):
            quotas.admit("alice", 1)

    def test_hard_cap_has_no_retry_after(self):
        quotas, _ = self.make(max_experiments=1)
        quotas.admit("alice", 0)
        with pytest.raises(QuotaExceeded) as info:
            quotas.admit("alice", 0)
        assert info.value.retry_after is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ClientQuotas(max_queued_cells=0)
        with pytest.raises(ValueError):
            ClientQuotas(max_experiments=0)
