"""Shared machinery for the golden determinism reference.

The golden payload runs two registered scenarios (the paper baseline and
the adversarial flash-sale hotspot) through the full protocol roster at a
reduced-but-meaningful scale and serializes every :class:`RunSummary`
field with full float precision.  JSON round-trips Python floats exactly
(shortest-repr), so equality against the committed reference is
*bit-identical* equality of every metric.
"""

from __future__ import annotations

import dataclasses
import os

from repro.core.scc_2s import SCC2S
from repro.core.scc_vw import SCCVW
from repro.experiments.figures import VW_PERIOD
from repro.experiments.runner import run_sweep
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.protocols.twopl_pa import TwoPhaseLockingPA
from repro.protocols.wait50 import Wait50
from repro.workloads.scenarios import get_scenario

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_reference.json")

#: Scenarios covered by the golden gate: the CI-gated paper baseline and
#: the high-contention hotspot scenario (exercises heavy speculation,
#: restarts, and the deferral machinery under skewed access).
SCENARIOS = ("paper-baseline", "flash-sale-hotspot")

#: Reduced-scale sweep knobs.  Chosen so the whole payload computes in a
#: few seconds while still driving thousands of events per protocol
#: through every hot path (forking, blocking, replacement, commit).
NUM_TRANSACTIONS = 240
WARMUP_COMMITS = 24
REPLICATIONS = 1
ARRIVAL_RATES = (60.0, 140.0)


def golden_protocols() -> dict:
    """The protocol roster the golden gate sweeps.

    Covers every concurrency-control family in the library: two-shadow
    speculation (SCC-2S), value-cognizant deferred speculation (SCC-VW),
    optimistic broadcast commit (OCC-BC), wait-controlled OCC (WAIT-50),
    and locking with priority abort (2PL-PA).
    """
    return {
        "SCC-2S": SCC2S,
        "SCC-VW": lambda: SCCVW(period=VW_PERIOD),
        "OCC-BC": OCCBroadcastCommit,
        "WAIT-50": Wait50,
        "2PL-PA": TwoPhaseLockingPA,
    }


def compute_golden_payload() -> dict:
    """Run the golden sweeps and return the JSON-serializable payload."""
    scenarios_out = {}
    for name in SCENARIOS:
        scenario = get_scenario(name)
        config = scenario.to_config(
            num_transactions=NUM_TRANSACTIONS,
            warmup_commits=WARMUP_COMMITS,
            replications=REPLICATIONS,
            arrival_rates=ARRIVAL_RATES,
        )
        results = run_sweep(golden_protocols(), config)
        summaries = {
            protocol: [
                [dataclasses.asdict(summary) for summary in per_rate]
                for per_rate in sweep.replications
            ]
            for protocol, sweep in results.items()
        }
        scenarios_out[name] = {
            "arrival_rates": list(ARRIVAL_RATES),
            "summaries": summaries,
        }
    return {
        "schema": 1,
        "scale": {
            "num_transactions": NUM_TRANSACTIONS,
            "warmup_commits": WARMUP_COMMITS,
            "replications": REPLICATIONS,
            "arrival_rates": list(ARRIVAL_RATES),
        },
        "scenarios": scenarios_out,
    }
