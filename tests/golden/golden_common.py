"""Shared machinery for the golden determinism reference.

The golden payload runs two registered scenarios (the paper baseline and
the adversarial flash-sale hotspot) through the full protocol roster at a
reduced-but-meaningful scale and serializes every :class:`RunSummary`
field with full float precision.  JSON round-trips Python floats exactly
(shortest-repr), so equality against the committed reference is
*bit-identical* equality of every metric.

``compute_golden_payload`` takes the engine name, so the same committed
reference gates both the object and the array engine: any divergence
between them (event ordering, RNG batching, workload tensors) fails the
array run against the reference the object engine produced.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.experiments.runner import run_sweep
from repro.workloads.scenarios import get_scenario

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_reference.json")

#: Scenarios covered by the golden gate: the CI-gated paper baseline and
#: the high-contention hotspot scenario (exercises heavy speculation,
#: restarts, and the deferral machinery under skewed access).
SCENARIOS = ("paper-baseline", "flash-sale-hotspot")

#: Reduced-scale sweep knobs.  Chosen so the whole payload computes in a
#: few seconds while still driving thousands of events per protocol
#: through every hot path (forking, blocking, replacement, commit).
NUM_TRANSACTIONS = 240
WARMUP_COMMITS = 24
REPLICATIONS = 1
ARRIVAL_RATES = (60.0, 140.0)


def golden_protocols() -> dict:
    """The protocol roster the golden gate sweeps.

    Covers every concurrency-control family in the library: two-shadow
    speculation (SCC-2S), value-cognizant deferred speculation (SCC-VW,
    at its registry-default period), optimistic broadcast commit
    (OCC-BC), wait-controlled OCC (WAIT-50), and locking with priority
    abort (2PL-PA).  Entries are registry spec strings with the
    reference's historical labels, so result keys stay stable.
    """
    return {
        "SCC-2S": "scc-2s",
        "SCC-VW": "scc-vw",
        "OCC-BC": "occ-bc",
        "WAIT-50": "wait-50",
        "2PL-PA": "2pl-pa",
    }


def compute_golden_payload(
    engine: Optional[str] = None, trace=None
) -> dict:
    """Run the golden sweeps and return the JSON-serializable payload.

    Parameters
    ----------
    engine : str, optional
        Simulation engine to run under (``"object"``/``"array"``); the
        payload must be identical regardless.
    trace : str or os.PathLike, optional
        JSONL trace-file path; when given, the sweeps run fully traced.
        The payload must also be identical regardless — tracing draws no
        randomness and perturbs no event order, and the telemetry
        regression test holds the gate on exactly that.
    """
    scenarios_out = {}
    for name in SCENARIOS:
        scenario = get_scenario(name)
        config = scenario.to_config(
            num_transactions=NUM_TRANSACTIONS,
            warmup_commits=WARMUP_COMMITS,
            replications=REPLICATIONS,
            arrival_rates=ARRIVAL_RATES,
        )
        results = run_sweep(
            golden_protocols(), config, engine=engine, trace=trace
        )
        summaries = {
            protocol: [
                [dataclasses.asdict(summary) for summary in per_rate]
                for per_rate in sweep.replications
            ]
            for protocol, sweep in results.items()
        }
        scenarios_out[name] = {
            "arrival_rates": list(ARRIVAL_RATES),
            "summaries": summaries,
        }
    return {
        "schema": 1,
        "scale": {
            "num_transactions": NUM_TRANSACTIONS,
            "warmup_commits": WARMUP_COMMITS,
            "replications": REPLICATIONS,
            "arrival_rates": list(ARRIVAL_RATES),
        },
        "scenarios": scenarios_out,
    }
