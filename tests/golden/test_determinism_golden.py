"""Golden-output determinism gate.

Runs the paper-baseline and flash-sale-hotspot scenarios with fixed seeds
through every protocol family and asserts *metric-for-metric* equality
against the committed reference (``golden_reference.json``).

This is the guard rail for performance work: any engine, core, or
protocol optimization that changes simulation results — event ordering,
RNG draw sequences, conflict detection, shadow replacement, commit
timing — fails here even if every behavioural unit test still passes.

To refresh the reference after an *intentional* semantics change, run
``python scripts/gen_golden_reference.py`` and commit the JSON alongside
an explanation (see that script's docstring).
"""

from __future__ import annotations

import json

import pytest

from tests.golden.golden_common import GOLDEN_PATH, compute_golden_payload


@pytest.fixture(scope="module")
def reference() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def current() -> dict:
    # Round-trip through JSON so floats compare in their serialized form
    # (identical for exact values; this only normalizes types like tuples).
    return json.loads(json.dumps(compute_golden_payload()))


def test_golden_scale_matches(reference, current):
    """The gate must compare like with like: same sweep shape as recorded."""
    assert current["scale"] == reference["scale"]


def test_golden_scenarios_present(reference, current):
    assert set(current["scenarios"]) == set(reference["scenarios"])


def test_golden_metrics_bit_identical(reference, current):
    """Every metric of every run must equal the committed reference exactly."""
    for scenario, ref_block in reference["scenarios"].items():
        cur_block = current["scenarios"][scenario]
        assert set(cur_block["summaries"]) == set(ref_block["summaries"]), scenario
        for protocol, ref_sweep in ref_block["summaries"].items():
            cur_sweep = cur_block["summaries"][protocol]
            # strict zips: a run that silently drops a rate or replication
            # must fail here, not truncate the comparison.
            for rate_idx, (ref_rate, cur_rate) in enumerate(
                zip(ref_sweep, cur_sweep, strict=True)
            ):
                for rep_idx, (ref_summary, cur_summary) in enumerate(
                    zip(ref_rate, cur_rate, strict=True)
                ):
                    for metric, ref_value in ref_summary.items():
                        cur_value = cur_summary[metric]
                        assert cur_value == ref_value, (
                            f"{scenario} / {protocol} / rate[{rate_idx}] / "
                            f"rep[{rep_idx}] / {metric}: "
                            f"got {cur_value!r}, reference {ref_value!r}"
                        )
