"""Golden gate under the array engine.

Replays the full golden payload (two scenarios, five protocol families,
two rates) through ``engine="array"`` and asserts metric-for-metric
equality against the *same* committed reference the object engine is
gated on.  This is the array engine's acceptance criterion: not merely
"deterministic", but indistinguishable from the reference engine on the
committed record.
"""

from __future__ import annotations

import json

import pytest

from tests.golden.golden_common import GOLDEN_PATH, compute_golden_payload


@pytest.fixture(scope="module")
def reference() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def current_array() -> dict:
    return json.loads(json.dumps(compute_golden_payload(engine="array")))


def test_array_engine_matches_committed_reference(reference, current_array):
    """Every metric of every array-engine run equals the object reference."""
    assert current_array["scale"] == reference["scale"]
    assert set(current_array["scenarios"]) == set(reference["scenarios"])
    for scenario, ref_block in reference["scenarios"].items():
        cur_block = current_array["scenarios"][scenario]
        assert set(cur_block["summaries"]) == set(ref_block["summaries"])
        for protocol, ref_sweep in ref_block["summaries"].items():
            cur_sweep = cur_block["summaries"][protocol]
            for rate_idx, (ref_rate, cur_rate) in enumerate(
                zip(ref_sweep, cur_sweep, strict=True)
            ):
                for rep_idx, (ref_summary, cur_summary) in enumerate(
                    zip(ref_rate, cur_rate, strict=True)
                ):
                    for metric, ref_value in ref_summary.items():
                        assert cur_summary[metric] == ref_value, (
                            f"array engine diverges from reference at "
                            f"{scenario} / {protocol} / rate[{rate_idx}] / "
                            f"rep[{rep_idx}] / {metric}"
                        )
