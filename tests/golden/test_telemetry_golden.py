"""Golden determinism gate with tracing enabled.

The telemetry contract: tracing is pure observation.  It draws no
randomness, perturbs no event order, and changes no metric.  This module
holds that promise against the committed golden reference — the *same*
``golden_reference.json`` the untraced gates compare against — by
recomputing the payload with a JSONL trace attached and demanding
bit-identical metrics.

A failure here with the untraced gates green means an emission hook leaks
into simulation semantics (e.g. a tracer call that consumes RNG or
reorders a heap tie); that is a telemetry bug, never a reason to refresh
the reference.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.events import TraceEvent, is_marker, iter_trace
from tests.golden.golden_common import GOLDEN_PATH, compute_golden_payload


@pytest.fixture(scope="module")
def reference() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def traced(tmp_path_factory) -> tuple[dict, object]:
    trace_path = tmp_path_factory.mktemp("golden-trace") / "golden.jsonl"
    payload = json.loads(json.dumps(compute_golden_payload(trace=trace_path)))
    return payload, trace_path


def test_traced_golden_metrics_bit_identical(reference, traced):
    """Tracing must not move a single metric off the committed reference."""
    current, _ = traced
    assert current["scale"] == reference["scale"]
    for scenario, ref_block in reference["scenarios"].items():
        cur_block = current["scenarios"][scenario]
        assert set(cur_block["summaries"]) == set(ref_block["summaries"])
        for protocol, ref_sweep in ref_block["summaries"].items():
            cur_sweep = cur_block["summaries"][protocol]
            for ref_rate, cur_rate in zip(ref_sweep, cur_sweep, strict=True):
                for ref_summary, cur_summary in zip(
                    ref_rate, cur_rate, strict=True
                ):
                    assert cur_summary == ref_summary, (scenario, protocol)


def test_traced_golden_run_leaves_a_valid_trace(traced):
    """The trace the gate produced must itself be well-formed."""
    _, trace_path = traced
    markers = events = 0
    kinds = set()
    for payload in iter_trace(trace_path):
        if is_marker(payload):
            markers += 1
            assert payload["marker"] == "cell_start"
        else:
            event = TraceEvent.from_dict(payload)  # validates the schema
            events += 1
            kinds.add(event.kind)
    # golden_common reuses one path for both scenarios (mode "w" per
    # sweep), so the surviving file holds the *last* scenario's sweep:
    # one marker per (protocol, rate, replication) cell.
    assert markers == 10
    assert events > 0
    assert {"txn_start", "commit", "shadow_fork"} <= kinds
