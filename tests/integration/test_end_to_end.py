"""End-to-end integration tests on generated (baseline-model) workloads.

These run every protocol on the paper's workload shape at moderate scale
and assert the qualitative relationships the paper reports, plus global
correctness (all commits, serializable histories — checked inside
``run_once``).
"""

import pytest

from repro.core.scc_2s import SCC2S
from repro.core.scc_cb import SCCCB
from repro.core.scc_ks import SCCkS
from repro.core.scc_vw import SCCVW
from repro.experiments.config import baseline_config, two_class_config
from repro.experiments.runner import run_once
from repro.protocols.occ import BasicOCC
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.protocols.twopl_pa import TwoPhaseLockingPA
from repro.protocols.wait50 import Wait50

CONFIG = baseline_config(
    num_transactions=500,
    warmup_commits=50,
    replications=1,
)
RATE = 120.0  # high-contention operating point


@pytest.fixture(scope="module")
def summaries():
    factories = {
        "OCC": BasicOCC,
        "OCC-BC": OCCBroadcastCommit,
        "WAIT-50": Wait50,
        "2PL-PA": TwoPhaseLockingPA,
        "SCC-2S": SCC2S,
        "SCC-CB": SCCCB,
        "SCC-VW": lambda: SCCVW(period=0.01),
    }
    return {
        name: run_once(factory, CONFIG, arrival_rate=RATE)
        for name, factory in factories.items()
    }


def test_all_protocols_commit_everything(summaries):
    for name, summary in summaries.items():
        assert summary.committed == 450, name


def test_scc_beats_occ_bc_on_missed_ratio(summaries):
    assert summaries["SCC-2S"].missed_ratio < summaries["OCC-BC"].missed_ratio


def test_occ_bc_beats_basic_occ(summaries):
    assert summaries["OCC-BC"].missed_ratio <= summaries["OCC"].missed_ratio


def test_scc_never_restarts_more_than_occ(summaries):
    assert summaries["SCC-2S"].restarts <= summaries["OCC-BC"].restarts


def test_scc_uses_redundancy(summaries):
    # Speculation consumes redundant resources: SCC aborts shadows even
    # though it rarely restarts transactions (the paper's trade).
    assert summaries["SCC-2S"].shadow_aborts > summaries["SCC-2S"].restarts
    assert summaries["SCC-2S"].wasted_work > 0


def test_unlimited_budget_no_worse_than_two_shadows(summaries):
    assert (
        summaries["SCC-CB"].missed_ratio
        <= summaries["SCC-2S"].missed_ratio + 1.0
    )


def test_vw_system_value_at_least_scc2s(summaries):
    # Figure 14(a): SCC-VW provides a (minor) improvement in System Value.
    assert (
        summaries["SCC-VW"].system_value
        >= summaries["SCC-2S"].system_value - 0.5
    )


def test_two_class_workload_end_to_end():
    config = two_class_config(
        num_transactions=400, warmup_commits=40, replications=1
    )
    summary = run_once(lambda: SCCVW(period=0.01), config, arrival_rate=100.0)
    assert summary.committed == 360
    assert set(summary.per_class_missed) == {"critical-long", "routine-short"}


def test_k_sweep_monotone_missed_ratio():
    # A1's claim at one operating point: more shadows, fewer misses
    # (allowing small noise at equal k).
    missed = {}
    for k in (1, 3):
        summary = run_once(
            (lambda kk: lambda: SCCkS(k=kk))(k), CONFIG, arrival_rate=RATE
        )
        missed[k] = summary.missed_ratio
    assert missed[3] <= missed[1] + 0.5


def test_low_load_all_protocols_near_zero_missed():
    for factory in (SCC2S, OCCBroadcastCommit, TwoPhaseLockingPA):
        summary = run_once(factory, CONFIG, arrival_rate=15.0)
        assert summary.missed_ratio <= 2.0
