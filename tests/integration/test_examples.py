"""Smoke tests: every example script runs end to end.

Examples are executed in-process via ``runpy`` with reduced workload sizes
so the whole suite stays fast; their printed output is sanity-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "missed ratio" in out
    assert "history serializable   : True" in out


def test_shadow_anatomy(capsys):
    out = run_example("shadow_anatomy.py", [], capsys)
    assert "fork" in out
    assert "promote" in out
    assert "saved" in out


def test_protocol_shootout(capsys):
    out = run_example("protocol_shootout.py", ["--transactions", "150"], capsys)
    assert "SCC-2S" in out
    assert "2PL-PA" in out
    assert "arrival rate 160" in out


def test_telecom_billing(capsys):
    out = run_example("telecom_billing.py", ["--transactions", "300"], capsys)
    assert "fraud-check" in out
    assert "System Value" in out or "system value" in out
    # Registry-driven: the example names its scenario.
    assert "bursty-telecom" in out


def test_flash_sale(capsys):
    out = run_example("flash_sale.py", ["--transactions", "200"], capsys)
    assert "flash-sale-hotspot" in out
    assert "checkout" in out
    assert "2PL-PA" in out
    assert "Best System Value" in out
