"""Unit tests for confidence intervals."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.confidence import mean_confidence_interval


def test_single_sample_degenerate():
    ci = mean_confidence_interval([5.0])
    assert ci.mean == 5.0
    assert ci.half_width == 0.0
    assert ci.n == 1


def test_constant_samples_zero_width():
    ci = mean_confidence_interval([3.0, 3.0, 3.0])
    assert ci.mean == 3.0
    assert ci.half_width == 0.0


def test_interval_contains_mean_and_bounds():
    ci = mean_confidence_interval([1.0, 2.0, 3.0], level=0.90)
    assert ci.mean == pytest.approx(2.0)
    assert ci.low < 2.0 < ci.high
    assert ci.contains(2.0)
    assert not ci.contains(ci.high + 0.001)


def test_known_t_value():
    # n=3, 90% -> t(0.95, df=2) = 2.9200; s = 1.0; sem = 1/sqrt(3).
    ci = mean_confidence_interval([1.0, 2.0, 3.0], level=0.90)
    expected = 2.9200 * (1.0 / np.sqrt(3.0))
    assert ci.half_width == pytest.approx(expected, rel=1e-3)


def test_higher_level_wider_interval():
    samples = [1.0, 2.0, 4.0, 8.0]
    narrow = mean_confidence_interval(samples, level=0.80)
    wide = mean_confidence_interval(samples, level=0.99)
    assert wide.half_width > narrow.half_width


def test_coverage_monte_carlo():
    rng = np.random.default_rng(42)
    covered = 0
    trials = 400
    for _ in range(trials):
        samples = rng.normal(10.0, 2.0, size=8)
        if mean_confidence_interval(list(samples), level=0.90).contains(10.0):
            covered += 1
    assert covered / trials == pytest.approx(0.90, abs=0.05)


def test_str_rendering():
    text = str(mean_confidence_interval([1.0, 2.0], level=0.90))
    assert "±" in text
    assert "n=2" in text


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        mean_confidence_interval([])
    with pytest.raises(ConfigurationError):
        mean_confidence_interval([1.0], level=1.5)
