"""Unit tests for table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.report import format_series_table, format_table


def test_format_table_basic():
    text = format_table(["name", "x"], [["a", 1.5], ["bb", 2.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.500" in text
    assert "bb" in text


def test_format_table_column_alignment():
    text = format_table(["col"], [["x"], ["longer"]])
    lines = text.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines padded to the same width


def test_format_table_empty_rows_ok():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_format_table_row_width_mismatch():
    with pytest.raises(ConfigurationError):
        format_table(["a", "b"], [["only-one"]])


def test_format_table_no_headers_rejected():
    with pytest.raises(ConfigurationError):
        format_table([], [])


def test_series_table_shapes():
    text = format_series_table(
        "rate",
        [10, 20],
        {"SCC-2S": [1.0, 2.0], "OCC-BC": [3.0, 4.0]},
        title="fig",
    )
    assert "SCC-2S" in text
    assert "OCC-BC" in text
    assert "4.000" in text


def test_series_table_length_mismatch():
    with pytest.raises(ConfigurationError):
        format_series_table("rate", [10, 20], {"p": [1.0]})
