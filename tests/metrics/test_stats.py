"""Unit tests for the metrics collector."""

import pytest

from repro.errors import ProtocolError
from repro.metrics.stats import MetricsCollector
from repro.txn.spec import TransactionSpec
from tests.conftest import R, make_class


def spec(txn_id, arrival=0.0, deadline=10.0, value=1.0, alpha=45.0, name="c"):
    cls = make_class(num_steps=1, value=value, alpha_degrees=alpha, name=name)
    return TransactionSpec.build(
        txn_id=txn_id,
        arrival=arrival,
        steps=[R(0)],
        txn_class=cls,
        step_duration=1.0,
        deadline=deadline,
    )


def test_missed_ratio_and_tardiness():
    metrics = MetricsCollector()
    metrics.record_commit(spec(1, deadline=10.0), commit_time=5.0, work=1.0)
    metrics.record_commit(spec(2, deadline=10.0), commit_time=12.0, work=1.0)
    metrics.record_commit(spec(3, deadline=10.0), commit_time=14.0, work=1.0)
    metrics.record_commit(spec(4, deadline=10.0), commit_time=9.0, work=1.0)
    summary = metrics.summary()
    assert summary.committed == 4
    assert summary.missed_ratio == pytest.approx(50.0)
    assert summary.avg_tardiness_late == pytest.approx((2.0 + 4.0) / 2)
    assert summary.avg_tardiness_all == pytest.approx((2.0 + 4.0) / 4)


def test_system_value_percent():
    metrics = MetricsCollector()
    # On time: full value 1.0.  One unit late at 45 degrees: value 0.0.
    metrics.record_commit(spec(1, deadline=10.0, value=1.0), 10.0, work=1.0)
    metrics.record_commit(spec(2, deadline=10.0, value=1.0), 11.0, work=1.0)
    summary = metrics.summary()
    assert summary.system_value == pytest.approx(50.0)


def test_system_value_can_go_negative():
    metrics = MetricsCollector()
    metrics.record_commit(spec(1, deadline=10.0, value=1.0), 13.0, work=1.0)
    summary = metrics.summary()
    assert summary.system_value == pytest.approx(-200.0)


def test_warmup_commits_excluded_from_stats():
    metrics = MetricsCollector(warmup_commits=2)
    metrics.record_commit(spec(1), 20.0, work=1.0)  # late, but warmup
    metrics.record_commit(spec(2), 20.0, work=1.0)  # late, but warmup
    metrics.record_commit(spec(3), 5.0, work=1.0)
    summary = metrics.summary()
    assert summary.committed == 1
    assert summary.missed_ratio == 0.0
    assert metrics.total_committed == 3


def test_restart_and_abort_accounting():
    metrics = MetricsCollector()
    s = spec(1)
    metrics.record_restart(s)
    metrics.record_restart(s)
    metrics.record_shadow_abort(work=2.5)
    metrics.record_commit(s, 5.0, work=1.0)
    summary = metrics.summary()
    assert summary.restarts == 2
    assert summary.shadow_aborts == 1
    assert summary.wasted_work == pytest.approx(2.5)
    assert summary.useful_work == pytest.approx(1.0)
    assert summary.wasted_fraction == pytest.approx(2.5 / 3.5)
    assert metrics.records[0].restarts == 2


def test_per_class_breakdowns():
    metrics = MetricsCollector()
    metrics.record_commit(spec(1, name="gold", value=2.0), 5.0, work=1.0)
    metrics.record_commit(spec(2, name="iron", value=1.0), 12.0, work=1.0)
    summary = metrics.summary()
    assert summary.per_class_missed["gold"] == 0.0
    assert summary.per_class_missed["iron"] == 100.0
    assert summary.per_class_value["gold"] == pytest.approx(100.0)


def test_response_time():
    metrics = MetricsCollector()
    metrics.record_commit(spec(1, arrival=0.0), 5.0, work=1.0)
    metrics.record_commit(spec(2, arrival=0.0), 7.0, work=1.0)
    assert metrics.summary().avg_response_time == pytest.approx(6.0)


def test_commit_before_arrival_rejected():
    metrics = MetricsCollector()
    with pytest.raises(ProtocolError):
        metrics.record_commit(spec(1, arrival=5.0, deadline=10.0), 4.0, work=1.0)


def test_empty_summary_rejected():
    with pytest.raises(ProtocolError):
        MetricsCollector().summary()


def test_deferred_commit_counter():
    metrics = MetricsCollector()
    metrics.record_deferred_commit()
    metrics.record_commit(spec(1), 1.0, work=1.0)
    assert metrics.summary().deferred_commits == 1
