"""Property-based tests of SCC shadow invariants and value machinery."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.conflict_table import ConflictTable
from repro.core.probability import AdoptionProfile, adoption_profiles
from repro.core.scc_ks import SCCkS
from repro.core.shadow_counts import (
    scc_cb_total_shadows,
    scc_ob_shadows,
    scc_ob_shadows_enumerated,
)
from repro.metrics.confidence import mean_confidence_interval
from repro.txn.generator import fixed_workload
from repro.txn.spec import Step
from repro.values.distributions import (
    ExponentialExecution,
    UniformExecution,
)
from repro.values.value_function import ValueFunction
from tests.conftest import build_system, make_class


# ----------------------------------------------------------------------
# value functions
# ----------------------------------------------------------------------


@given(
    value=st.floats(min_value=0.0, max_value=1e6),
    deadline=st.floats(min_value=0.0, max_value=1e6),
    gradient=st.floats(min_value=0.0, max_value=1e3),
    t1=st.floats(min_value=0.0, max_value=2e6),
    t2=st.floats(min_value=0.0, max_value=2e6),
)
def test_value_functions_are_non_increasing(value, deadline, gradient, t1, t2):
    vf = ValueFunction(value=value, deadline=deadline, penalty_gradient=gradient)
    lo, hi = min(t1, t2), max(t1, t2)
    assert vf(lo) >= vf(hi)


@given(
    value=st.floats(min_value=0.01, max_value=1e4),
    deadline=st.floats(min_value=0.0, max_value=1e4),
    gradient=st.floats(min_value=1e-3, max_value=1e3),
)
def test_breakeven_is_the_zero_crossing(value, deadline, gradient):
    vf = ValueFunction(value=value, deadline=deadline, penalty_gradient=gradient)
    t0 = vf.breakeven_time()
    assert vf(t0) == abs(vf(t0)) or math.isclose(vf(t0), 0.0, abs_tol=1e-6)
    assert vf(t0 * 1.001 + 1e-6) <= 0.0


# ----------------------------------------------------------------------
# execution-time distributions
# ----------------------------------------------------------------------


@given(
    mean=st.floats(min_value=0.01, max_value=100.0),
    x1=st.floats(min_value=0.0, max_value=500.0),
    x2=st.floats(min_value=0.0, max_value=500.0),
)
def test_survival_monotone_exponential(mean, x1, x2):
    dist = ExponentialExecution(mean)
    lo, hi = min(x1, x2), max(x1, x2)
    assert dist.survival(lo) >= dist.survival(hi)


@given(
    low=st.floats(min_value=0.0, max_value=10.0),
    span=st.floats(min_value=0.01, max_value=10.0),
    elapsed=st.floats(min_value=0.0, max_value=25.0),
    x=st.floats(min_value=0.0, max_value=50.0),
)
def test_conditional_finish_is_a_probability(low, span, elapsed, x):
    dist = UniformExecution(low, low + span)
    p = dist.conditional_finish_by(x, elapsed)
    assert 0.0 <= p <= 1.0


@given(
    mean=st.floats(min_value=0.05, max_value=50.0),
    elapsed=st.floats(min_value=0.0, max_value=100.0),
    epsilon=st.floats(min_value=0.001, max_value=0.2),
)
def test_horizon_meets_target(mean, elapsed, epsilon):
    dist = ExponentialExecution(mean)
    horizon = dist.horizon(elapsed, epsilon)
    assert horizon >= elapsed
    assert dist.conditional_finish_by(horizon, elapsed) >= 1.0 - epsilon - 1e-9


# ----------------------------------------------------------------------
# conflict table
# ----------------------------------------------------------------------


@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # writer
            st.integers(min_value=0, max_value=9),  # page
            st.integers(min_value=0, max_value=15),  # position
        ),
        max_size=40,
    )
)
def test_conflict_table_first_pos_is_minimum(events):
    table = ConflictTable()
    minima = {}
    for writer, page, position in events:
        table.record(writer, page, position)
        minima[writer] = min(minima.get(writer, position), position)
    for writer, expected in minima.items():
        assert table.get(writer).first_pos == expected
    ordered = [r.first_pos for r in table.records()]
    assert ordered == sorted(ordered)


# ----------------------------------------------------------------------
# shadow counts
# ----------------------------------------------------------------------


@given(n=st.integers(min_value=1, max_value=9))
def test_ob_formula_equals_enumeration(n):
    assert scc_ob_shadows(n) == scc_ob_shadows_enumerated(n)


@given(n=st.integers(min_value=3, max_value=12))
def test_cb_quadratic_below_ob_factorial(n):
    assert scc_cb_total_shadows(n) <= scc_ob_shadows(n)


# ----------------------------------------------------------------------
# adoption probabilities on live systems
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    now=st.floats(min_value=0.5, max_value=6.0),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_adoption_mass_sums_to_one_mid_run(seed, now):
    import numpy as np

    rng = np.random.default_rng(seed)
    programs = []
    for _ in range(4):
        pages = rng.choice(6, size=3, replace=False)
        flags = rng.random(3) < 0.5
        programs.append(
            [Step(page=int(p), is_write=bool(w)) for p, w in zip(pages, flags)]
        )
    protocol = SCCkS(k=3)
    specs = fixed_workload(
        programs=programs,
        arrivals=[0.0, 0.3, 0.6, 0.9],
        txn_class=make_class(num_steps=3),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=6)
    system.load_workload(specs)
    system.sim.run(until=now)
    for profile in adoption_profiles(protocol, now=system.sim.now).values():
        assert isinstance(profile, AdoptionProfile)
        assert profile.total() == __import__("pytest").approx(1.0)
        assert 0.0 <= profile.p_optimistic <= 1.0
    system.sim.run()


# ----------------------------------------------------------------------
# confidence intervals
# ----------------------------------------------------------------------


@given(
    samples=st.lists(
        st.floats(min_value=-1e5, max_value=1e5),
        min_size=2,
        max_size=30,
    )
)
def test_confidence_interval_contains_sample_mean(samples):
    import numpy as np

    ci = mean_confidence_interval(samples, level=0.9)
    assert ci.contains(float(np.mean(samples)))
    assert ci.half_width >= 0.0


# ----------------------------------------------------------------------
# SCC shadow invariants under random mid-run inspection
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    checkpoint=st.floats(min_value=0.5, max_value=8.0),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scc_invariants_hold_at_any_instant(seed, checkpoint):
    import numpy as np

    rng = np.random.default_rng(seed)
    programs = []
    for _ in range(5):
        length = int(rng.integers(2, 5))
        pages = rng.choice(6, size=length, replace=False)
        flags = rng.random(length) < 0.4
        programs.append(
            [Step(page=int(p), is_write=bool(w)) for p, w in zip(pages, flags)]
        )
    protocol = SCCkS(k=3)
    specs = fixed_workload(
        programs=programs,
        arrivals=[float(a) for a in rng.random(5) * 3.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=6)
    system.load_workload(specs)
    system.sim.run(until=checkpoint)
    protocol.check_invariants()
    system.sim.run()
    protocol.check_invariants()
    assert system.committed_count == 5
