"""Property-based tests: every protocol serializes every workload.

Hypothesis generates small adversarial workloads (few pages, heavy
conflicts, staggered arrivals); each protocol must (1) commit every
transaction, (2) never commit a stale read (enforced by the system model),
and (3) produce a conflict-serializable history.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.serializability import check_serializable
from repro.core.scc_2s import SCC2S
from repro.core.scc_cb import SCCCB
from repro.core.scc_ks import SCCkS
from repro.core.scc_vw import SCCVW
from repro.protocols.occ import BasicOCC
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.protocols.serial import SerialExecution
from repro.protocols.twopl_pa import TwoPhaseLockingPA
from repro.protocols.wait50 import Wait50
from repro.txn.generator import fixed_workload
from repro.txn.spec import Step
from tests.conftest import build_system, make_class

NUM_PAGES = 6  # tiny database -> maximal contention

PROTOCOL_FACTORIES = {
    "serial": SerialExecution,
    "occ": BasicOCC,
    "occ-bc": OCCBroadcastCommit,
    "wait50": Wait50,
    "2pl-pa": TwoPhaseLockingPA,
    "scc-2s": SCC2S,
    "scc-3s": lambda: SCCkS(k=3),
    "scc-cb": SCCCB,
    "scc-vw": lambda: SCCVW(period=0.3),
}


@st.composite
def workloads(draw):
    """A handful of transactions over a tiny page set."""
    num_txns = draw(st.integers(min_value=2, max_value=6))
    programs = []
    arrivals = []
    for _ in range(num_txns):
        length = draw(st.integers(min_value=1, max_value=5))
        pages = draw(
            st.lists(
                st.integers(min_value=0, max_value=NUM_PAGES - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        flags = draw(
            st.lists(st.booleans(), min_size=length, max_size=length)
        )
        programs.append(
            [Step(page=p, is_write=w) for p, w in zip(pages, flags)]
        )
        arrivals.append(
            draw(
                st.floats(
                    min_value=0.0,
                    max_value=4.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
        )
    return programs, arrivals


def run_workload(protocol_factory, programs, arrivals):
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals,
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=1.0,
    )
    system = build_system(protocol_factory(), num_pages=NUM_PAGES)
    system.load_workload(specs)
    system.run(max_events=400_000)
    return system


@pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
@given(workload=workloads())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_protocol_serializes_every_workload(name, workload):
    programs, arrivals = workload
    system = run_workload(PROTOCOL_FACTORIES[name], programs, arrivals)
    assert system.committed_count == len(programs)
    assert check_serializable(system.history)


@given(workload=workloads())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scc_commits_match_serial_effects_structure(workload):
    # Same workload under SCC and Serial: both serializable, same set of
    # committed transactions, and the same *final database version count*
    # per page (every write installed exactly once).
    programs, arrivals = workload
    scc = run_workload(SCC2S, programs, arrivals)
    serial = run_workload(SerialExecution, programs, arrivals)
    assert scc.committed_count == serial.committed_count
    for page in range(NUM_PAGES):
        assert scc.db.version(page) == serial.db.version(page)
