"""Unit tests for the execution framework (step loop, epochs, states)."""

import pytest

from repro.errors import InvariantViolation, ProtocolError
from repro.protocols.base import CCProtocol, Execution, ExecutionState
from repro.protocols.serial import SerialExecution
from repro.txn.generator import fixed_workload
from tests.conftest import R, W, build_system, make_class


class Recorder(CCProtocol):
    """Minimal protocol that records hook invocations."""

    name = "recorder"

    def __init__(self, block_at=None):
        super().__init__()
        self.events = []
        self.block_at = block_at
        self.execution = None

    def on_arrival(self, txn):
        self.execution = Execution(txn)
        self._start(self.execution)

    def before_step(self, execution, step):
        self.events.append(("before", execution.pos, step.page))
        if self.block_at is not None and execution.pos == self.block_at:
            self._block(execution)
            return False
        return True

    def after_step(self, execution, step):
        self.events.append(("after", execution.pos, step.page))

    def on_finished(self, execution):
        self.events.append(("finished", execution.pos, None))
        self._commit(execution)


def drive(protocol, steps):
    system = build_system(protocol, num_pages=16)
    specs = fixed_workload(
        programs=[steps],
        arrivals=[0.0],
        txn_class=make_class(num_steps=len(steps)),
        step_duration=1.0,
    )
    system.load_workload(specs)
    return system


def test_hooks_fire_in_order():
    protocol = Recorder()
    system = drive(protocol, [R(0), W(1)])
    system.run()
    assert protocol.events == [
        ("before", 0, 0),
        ("after", 1, 0),
        ("before", 1, 1),
        ("after", 2, 1),
        ("finished", 2, None),
    ]


def test_readset_and_writeset_recorded_with_versions():
    protocol = Recorder()
    system = drive(protocol, [R(0), W(1)])
    system.run()
    execution = protocol.execution
    assert execution.readset[0].position == 0
    assert execution.readset[0].version == 0
    assert execution.readset[0].time == pytest.approx(1.0)
    assert execution.writeset == {1: 1}
    assert execution.work == pytest.approx(2.0)


def test_blocked_execution_makes_no_progress():
    protocol = Recorder(block_at=1)
    system = drive(protocol, [R(0), R(1), R(2)])
    system.sim.run()
    execution = protocol.execution
    assert execution.state is ExecutionState.BLOCKED
    assert execution.pos == 1
    # Resume and finish.
    protocol.block_at = None
    protocol._resume(execution)
    system.sim.run()
    assert execution.state is ExecutionState.COMMITTED


def test_stale_epoch_callback_ignored():
    protocol = Recorder()
    system = drive(protocol, [R(0), R(1)])
    system.sim.run(until=0.5)  # step 0 in flight
    execution = protocol.execution
    execution.bump_epoch()  # simulate an abort/re-route mid-service
    execution.state = ExecutionState.BLOCKED
    system.sim.run(until=1.5)  # the old completion event fires harmlessly
    assert execution.pos == 0
    assert execution.readset == {}


def test_kill_releases_execution():
    protocol = Recorder()
    system = drive(protocol, [R(0), R(1)])
    system.sim.run(until=0.5)
    protocol._kill(protocol.execution)
    assert protocol.execution.state is ExecutionState.ABORTED
    # Wasted work accounted.
    assert system.metrics.shadow_aborts == 1
    # The pending completion is a no-op; the drain check would fail, so we
    # only run the event queue (the transaction is deliberately lost).
    system.sim.run()
    assert protocol.execution.pos == 0


def test_state_machine_violations_raise():
    protocol = Recorder()
    system = drive(protocol, [R(0)])
    system.sim.run(until=0.5)
    execution = protocol.execution
    with pytest.raises(ProtocolError):
        protocol._resume(execution)  # not blocked
    with pytest.raises(ProtocolError):
        protocol._commit(execution)  # not finished
    execution.state = ExecutionState.ABORTED
    with pytest.raises(ProtocolError):
        protocol._start(execution)  # dead


def test_before_step_contract_enforced():
    class Liar(Recorder):
        def before_step(self, execution, step):
            return False  # refuses without blocking

    protocol = Liar()
    system = drive(protocol, [R(0)])
    with pytest.raises(InvariantViolation):
        system.run()


def test_current_step_past_end_rejected():
    protocol = SerialExecution()
    system = build_system(protocol, num_pages=4)
    specs = fixed_workload(
        programs=[[R(0)]],
        arrivals=[0.0],
        txn_class=make_class(num_steps=1),
        step_duration=1.0,
    )
    system.load_workload(specs)
    system.run()
    execution = Execution(specs[0])
    execution.pos = 1
    with pytest.raises(ProtocolError):
        execution.current_step()


def test_unbound_protocol_rejected():
    protocol = Recorder()
    with pytest.raises(ProtocolError):
        protocol._require_system()
