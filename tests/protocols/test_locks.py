"""Unit tests for the lock table."""

import pytest

from repro.errors import ProtocolError
from repro.protocols.locks import LockMode, LockRequest, LockTable, compatible


def test_compatibility_matrix():
    assert compatible(LockMode.READ, LockMode.READ)
    assert not compatible(LockMode.READ, LockMode.WRITE)
    assert not compatible(LockMode.WRITE, LockMode.READ)
    assert not compatible(LockMode.WRITE, LockMode.WRITE)


def test_grant_and_query():
    table = LockTable()
    table.grant(1, 10, LockMode.READ)
    assert table.mode_held(1, 10) is LockMode.READ
    assert table.mode_held(2, 10) is None
    assert table.holders(10) == {1: LockMode.READ}
    assert table.pages_held(1) == {10}


def test_upgrade_keeps_strongest_mode():
    table = LockTable()
    table.grant(1, 10, LockMode.READ)
    table.grant(1, 10, LockMode.WRITE)
    assert table.mode_held(1, 10) is LockMode.WRITE
    table.grant(1, 10, LockMode.READ)  # downgrade attempt ignored
    assert table.mode_held(1, 10) is LockMode.WRITE


def test_conflicting_holders():
    table = LockTable()
    table.grant(1, 10, LockMode.READ)
    table.grant(2, 10, LockMode.READ)
    assert table.conflicting_holders(3, 10, LockMode.READ) == []
    assert sorted(table.conflicting_holders(3, 10, LockMode.WRITE)) == [1, 2]
    # The requester itself is never in conflict.
    assert table.conflicting_holders(1, 10, LockMode.WRITE) == [2]


def test_waiters_sorted_by_key():
    table = LockTable()
    table.enqueue(5, LockRequest(txn_id=1, mode=LockMode.WRITE, key=(2.0, 1)))
    table.enqueue(5, LockRequest(txn_id=2, mode=LockMode.READ, key=(1.0, 2)))
    waiters = table.waiters(5)
    assert [w.txn_id for w in waiters] == [2, 1]


def test_cancel_requests_marks_dead():
    table = LockTable()
    request = LockRequest(txn_id=1, mode=LockMode.READ, key=(1.0, 1))
    table.enqueue(5, request)
    table.cancel_requests(1)
    assert not request.alive
    assert table.waiters(5) == []


def test_release_all_returns_pages():
    table = LockTable()
    table.grant(1, 10, LockMode.READ)
    table.grant(1, 11, LockMode.WRITE)
    table.grant(2, 10, LockMode.READ)
    freed = table.release_all(1)
    assert freed == [10, 11]
    assert table.mode_held(1, 10) is None
    assert table.mode_held(2, 10) is LockMode.READ
    assert table.pages_held(1) == set()


def test_release_all_unknown_txn_is_noop():
    table = LockTable()
    assert table.release_all(99) == []


def test_release_desync_detected():
    table = LockTable()
    table.grant(1, 10, LockMode.READ)
    # Corrupt the entry to simulate bookkeeping desync.
    table._entries[10].holders.clear()
    with pytest.raises(ProtocolError):
        table.release_all(1)


def test_compact_removes_dead_entries():
    table = LockTable()
    request = LockRequest(txn_id=1, mode=LockMode.READ, key=(1.0, 1))
    table.enqueue(5, request)
    request.alive = False
    table.compact(5)
    assert table.waiters(5) == []
