"""Scenario tests for basic OCC (backward validation; paper Figure 1(a))."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.protocols.occ import BasicOCC
from tests.conftest import R, W, commit_time_of, run_scenario


def test_no_conflict_no_restart():
    system = run_scenario(
        BasicOCC(),
        programs=[[R(0), W(1)], [R(2), W(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert system.metrics.restarts == 0


def test_stale_reader_restarts_at_validation_only():
    # Figure 1(a): T0 writes x (page 0) and commits at t=2; T1 read x at
    # t=1 and keeps running blindly until its validation at t=3, where it
    # discovers the conflict and restarts: 3 more steps -> commit at 6.
    system = run_scenario(
        BasicOCC(),
        programs=[[R(1), W(0)], [R(0), R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(6.0)
    assert system.metrics.restarts == 1


def test_validation_passes_when_writer_commits_after_reader():
    # T1 (short) validates before the writer T0 commits: no restart.
    system = run_scenario(
        BasicOCC(),
        programs=[[R(1), R(2), W(0)], [R(0)]],
    )
    assert commit_time_of(system, 1) == pytest.approx(1.0)
    assert system.metrics.restarts == 0


def test_write_write_conflict_detected_via_read_modify_write():
    # Both update page 0 (read-modify-write).  T1 reads page 0 at t=1,
    # T0 installs version 1 at t=2 (its event fires first), so T1's
    # validation at t=2 sees a stale read and restarts: commits at 4.
    system = run_scenario(
        BasicOCC(),
        programs=[[R(1), W(0)], [W(0), R(2)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert system.metrics.restarts == 1


def test_restart_reruns_the_full_program():
    # T0 reads page 0 at t=1 (version 0); two writers install versions 1
    # and 2 before T0's validation at t=4, forcing one restart; the rerun
    # takes another 4 steps -> commit at 8 with fresh versions.
    system = run_scenario(
        BasicOCC(),
        programs=[
            [R(0), R(1), R(2), R(3)],
            [W(0)],
            [R(4), W(0)],
        ],
        arrivals=[0.0, 0.0, 1.5],
    )
    assert system.metrics.restarts == 1
    assert commit_time_of(system, 0) == pytest.approx(8.0)
    assert check_serializable(system.history)


def test_history_serializable_under_contention():
    programs = [[W(i % 3), R((i + 1) % 3)] for i in range(10)]
    system = run_scenario(
        BasicOCC(),
        programs=programs,
        arrivals=[0.3 * i for i in range(10)],
        num_pages=3,
    )
    assert check_serializable(system.history)
