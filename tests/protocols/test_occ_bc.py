"""Scenario tests for OCC Broadcast Commit (paper Figure 1(b))."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.protocols.occ_bc import OCCBroadcastCommit
from tests.conftest import R, W, commit_time_of, run_scenario


def test_broadcast_restarts_reader_immediately():
    # Same setup as the basic-OCC figure-1 test: the stale reader is
    # restarted at the writer's commit (t=2), not at its own validation.
    # Restarted T1 runs 3 steps from t=2 -> commits at 5 (vs 6 for OCC).
    system = run_scenario(
        OCCBroadcastCommit(),
        programs=[[R(1), W(0)], [R(0), R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(5.0)
    assert system.metrics.restarts == 1


def test_early_restart_beats_basic_occ():
    from repro.protocols.occ import BasicOCC

    programs = [[R(1), W(0)], [R(0), R(2), R(3)]]
    occ = run_scenario(BasicOCC(), programs=[list(p) for p in programs])
    bc = run_scenario(OCCBroadcastCommit(), programs=[list(p) for p in programs])
    assert commit_time_of(bc, 1) < commit_time_of(occ, 1)


def test_unexposed_transactions_unaffected():
    system = run_scenario(
        OCCBroadcastCommit(),
        programs=[[W(0)], [R(1), R(2)]],
    )
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert system.metrics.restarts == 0


def test_commit_order_first_finisher_wins():
    # The shorter transaction validates first and aborts the longer one.
    system = run_scenario(
        OCCBroadcastCommit(),
        programs=[[R(0), W(1)], [R(1), R(2), R(3)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    # T1 read page 1 at t=1 (version 0) -> restarted at t=2 -> commits 5.
    assert commit_time_of(system, 1) == pytest.approx(5.0)


def test_broadcast_hits_multiple_readers():
    # T0 commits at t=2; T1 and T2 read page 0 at t=1 (version 0) and are
    # both restarted by the broadcast; T3 is untouched.
    system = run_scenario(
        OCCBroadcastCommit(),
        programs=[[R(5), W(0)], [R(0), R(1)], [R(0), R(2)], [R(3), R(4)]],
    )
    assert system.metrics.restarts == 2  # T1 and T2, not T3
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert commit_time_of(system, 2) == pytest.approx(4.0)
    assert commit_time_of(system, 3) == pytest.approx(2.0)
    assert check_serializable(system.history)


def test_no_stale_read_ever_committed():
    programs = [[W(i % 3), R((i + 1) % 3)] for i in range(12)]
    system = run_scenario(
        OCCBroadcastCommit(),
        programs=programs,
        arrivals=[0.25 * i for i in range(12)],
        num_pages=3,
    )
    # system.commit raises InvariantViolation on stale reads; reaching here
    # with a serializable history is the assertion.
    assert check_serializable(system.history)
    assert len(system.history) == 12
