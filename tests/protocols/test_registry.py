"""Tests for the protocol registry: specs, parsing, round-trips, builds."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocols.base import CCProtocol
from repro.protocols.registry import (
    ParamSpec,
    ProtocolFamily,
    ProtocolSpec,
    all_protocol_families,
    available_protocols,
    get_protocol_family,
    parse_protocol_spec,
    protocol_spec,
    register_protocol,
)

ROSTER = (
    "scc-2s",
    "scc-ks",
    "scc-cb",
    "scc-dc",
    "scc-vw",
    "2pl-pa",
    "occ",
    "occ-bc",
    "wait-50",
    "serial",
)


class TestRegistry:
    def test_full_paper_roster_is_registered(self):
        assert set(ROSTER) <= set(available_protocols())

    def test_available_protocols_sorted(self):
        assert list(available_protocols()) == sorted(available_protocols())

    def test_all_families_iterates_in_name_order(self):
        names = [family.name for family in all_protocol_families()]
        assert names == sorted(names)

    def test_unknown_family_lists_registry(self):
        with pytest.raises(ConfigurationError, match="scc-2s"):
            get_protocol_family("scc-99x")

    def test_register_rejects_duplicates_without_replace(self):
        family = get_protocol_family("serial")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol(family)
        assert register_protocol(family, replace=True) is family

    def test_every_family_documents_itself(self):
        for family in all_protocol_families():
            assert family.description
            for param in family.params:
                assert param.doc


class TestEveryRegisteredProtocol:
    @pytest.mark.parametrize("family", ROSTER)
    def test_constructible_by_name_with_defaults(self, family):
        protocol = ProtocolSpec.create(family).build()
        assert isinstance(protocol, CCProtocol)

    @pytest.mark.parametrize("family", ROSTER)
    def test_spec_is_a_factory(self, family):
        spec = ProtocolSpec.create(family)
        first, second = spec(), spec()
        assert type(first) is type(second)
        assert first is not second  # fresh instance per call

    @pytest.mark.parametrize("family", ROSTER)
    def test_json_round_trip(self, family):
        spec = ProtocolSpec.create(family)
        rebuilt = ProtocolSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    @pytest.mark.parametrize("family", ROSTER)
    def test_canonical_string_round_trip(self, family):
        spec = ProtocolSpec.create(family)
        assert parse_protocol_spec(spec.canonical()) == spec


class TestSpecNormalization:
    def test_defaults_fill_in(self):
        assert parse_protocol_spec("scc-ks") == parse_protocol_spec("scc-ks?k=2")

    def test_param_order_is_irrelevant(self):
        assert parse_protocol_spec(
            "scc-vw?period=0.02&k=3"
        ) == parse_protocol_spec("scc-vw?k=3&period=0.02")

    def test_int_params_coerce_from_strings(self):
        assert parse_protocol_spec("scc-ks?k=3").params["k"] == 3

    def test_float_params_coerce_from_ints(self):
        spec = ProtocolSpec.create("wait-50", wait_threshold=1)
        assert spec.params["wait_threshold"] == 1.0
        assert isinstance(spec.params["wait_threshold"], float)

    def test_none_spelled_out(self):
        spec = parse_protocol_spec("scc-ks?k=none")
        assert spec.params["k"] is None
        assert spec.canonical() == "scc-ks?k=none"

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="declared"):
            parse_protocol_spec("scc-ks?shadows=3")

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            parse_protocol_spec("occ-xyz?x=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            parse_protocol_spec("scc-ks?k=soon")

    def test_choice_param_rejected_outside_choices(self):
        with pytest.raises(ConfigurationError, match="replacement"):
            parse_protocol_spec("scc-ks?replacement=random")

    def test_malformed_tokens_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_protocol_spec("scc-ks?k")
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_protocol_spec("scc-ks?k=2&k=3")

    def test_protocol_spec_coercion_helper(self):
        spec = ProtocolSpec.create("occ-bc")
        assert protocol_spec(spec) is spec
        assert protocol_spec("occ-bc") == spec
        assert protocol_spec({"family": "occ-bc"}) == spec
        with pytest.raises(ConfigurationError):
            protocol_spec(42)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            ProtocolSpec.from_dict({"family": "occ", "extra": 1})


class TestLabels:
    def test_scc_ks_label_convention(self):
        assert parse_protocol_spec("scc-ks?k=2").label == "SCC-2S"
        assert parse_protocol_spec("scc-ks?k=3").label == "SCC-3S"
        assert parse_protocol_spec("scc-ks?k=none").label == "SCC-CB (k=inf)"

    def test_wait_label_convention(self):
        assert parse_protocol_spec("wait-50").label == "WAIT-50"
        assert (
            parse_protocol_spec("wait-50?wait_threshold=0.25").label
            == "WAIT-25"
        )

    def test_non_label_params_appended(self):
        label = parse_protocol_spec("scc-ks?k=3&replacement=value-aware").label
        assert label == "SCC-3S [replacement=value-aware]"

    def test_default_params_not_appended(self):
        assert parse_protocol_spec("scc-vw").label == "SCC-VW"


class TestBuiltProtocols:
    def test_parameters_reach_the_protocol(self):
        protocol = parse_protocol_spec("scc-ks?k=5").build()
        assert protocol.k == 5
        wait = parse_protocol_spec("wait-50?wait_threshold=0.75").build()
        assert wait._threshold == 0.75

    def test_replacement_choice_reaches_the_protocol(self):
        from repro.core.replacement import ValueAwareReplacement

        protocol = parse_protocol_spec(
            "scc-ks?replacement=value-aware"
        ).build()
        assert isinstance(protocol.replacement, ValueAwareReplacement)

    def test_vw_parameters_reach_the_termination_policy(self):
        protocol = parse_protocol_spec(
            "scc-vw?period=0.02&commit_threshold=0.6"
        ).build()
        assert protocol._termination.period == 0.02
        assert protocol._termination.commit_threshold == 0.6

    def test_invalid_protocol_parameters_surface_at_build(self):
        # The registry validates types; domain checks stay in the
        # protocol constructors and surface when the spec is built.
        with pytest.raises(ConfigurationError):
            parse_protocol_spec("scc-ks?k=0").build()


class TestFingerprintPayload:
    def test_payload_covers_family_and_all_params(self):
        payload = parse_protocol_spec("scc-ks?k=3").fingerprint_payload()
        assert payload == {
            "family": "scc-ks",
            "params": {"k": 3, "replacement": "lbfo"},
        }

    def test_variants_have_distinct_payloads(self):
        assert (
            parse_protocol_spec("scc-ks?k=2").fingerprint_payload()
            != parse_protocol_spec("scc-ks?k=3").fingerprint_payload()
        )


# ----------------------------------------------------------------------
# property tests: round-trips hold across the whole parameter space
# ----------------------------------------------------------------------

_K_VALUES = st.one_of(st.none(), st.integers(min_value=1, max_value=12))
_FRACTIONS = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False
)
_REPLACEMENTS = st.sampled_from(["lbfo", "deadline-aware", "value-aware"])


@st.composite
def protocol_specs(draw):
    """Random valid ProtocolSpec across every registered family."""
    family = draw(st.sampled_from(ROSTER))
    params = {}
    if family in ("scc-ks", "scc-dc", "scc-vw"):
        params["k"] = draw(_K_VALUES)
        params["replacement"] = draw(_REPLACEMENTS)
    if family in ("scc-dc", "scc-vw"):
        params["period"] = draw(_FRACTIONS)
    if family == "scc-dc":
        params["epsilon"] = draw(_FRACTIONS)
    if family == "scc-vw":
        params["commit_threshold"] = draw(_FRACTIONS)
    if family == "wait-50":
        params["wait_threshold"] = draw(_FRACTIONS)
    return ProtocolSpec.create(family, **params)


@given(protocol_specs())
def test_property_dict_round_trip(spec):
    assert ProtocolSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


@given(protocol_specs())
def test_property_canonical_string_round_trip(spec):
    assert parse_protocol_spec(spec.canonical()) == spec


def test_registry_defaults_match_constructor_defaults():
    # The single-source-of-truth guard: every registered parameter whose
    # name matches a constructor parameter must carry the same default,
    # so a tuning change in a protocol class cannot silently diverge
    # from what specs (and therefore store fingerprints) assume.
    import inspect

    from repro.core.scc_dc import SCCDC
    from repro.core.scc_ks import SCCkS
    from repro.core.scc_vw import SCCVW
    from repro.protocols.wait50 import Wait50

    constructors = {
        "scc-ks": SCCkS,
        "scc-dc": SCCDC,
        "scc-vw": SCCVW,
        "wait-50": Wait50,
    }
    for family_name, cls in constructors.items():
        signature = inspect.signature(cls.__init__)
        for param in get_protocol_family(family_name).params:
            if param.name not in signature.parameters:
                continue
            ctor_default = signature.parameters[param.name].default
            if param.name == "replacement":
                # Constructors take None -> LBFO; the registry spells the
                # same default as the "lbfo" choice string.
                assert ctor_default is None and param.default == "lbfo"
                continue
            assert ctor_default == param.default, (family_name, param.name)


def test_figures_vw_period_is_the_registry_default():
    from repro.experiments.figures import VW_PERIOD

    assert VW_PERIOD == get_protocol_family("scc-vw").param("period").default


def test_param_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="unknown kind"):
        ParamSpec("x", "complex", default=None, optional=True).coerce(1)


def test_family_param_lookup_errors_list_declared():
    family = ProtocolFamily(name="tmp", builder=lambda: None)
    with pytest.raises(ConfigurationError, match=r"\(none\)"):
        family.param("k")
