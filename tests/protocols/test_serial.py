"""Tests for the serial-execution oracle."""

import pytest

from repro.analysis.serializability import check_serializable, serialization_order
from repro.protocols.serial import SerialExecution
from tests.conftest import R, W, commit_order, commit_time_of, run_scenario


def test_runs_one_at_a_time_fcfs():
    system = run_scenario(
        SerialExecution(),
        programs=[[R(0), W(1)], [R(1), W(2)], [R(2)]],
        arrivals=[0.0, 0.0, 0.0],
    )
    assert commit_order(system) == [0, 1, 2]
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert commit_time_of(system, 2) == pytest.approx(5.0)


def test_idle_system_starts_arrival_immediately():
    system = run_scenario(
        SerialExecution(),
        programs=[[R(0)], [R(1)]],
        arrivals=[0.0, 10.0],
    )
    assert commit_time_of(system, 1) == pytest.approx(11.0)


def test_history_is_serial():
    system = run_scenario(
        SerialExecution(),
        programs=[[W(0)], [R(0), W(0)], [R(0)]],
        arrivals=[0.0, 0.0, 0.0],
    )
    assert check_serializable(system.history)
    assert serialization_order(system.history) == [0, 1, 2]
    assert system.metrics.restarts == 0
