"""Scenario tests for 2PL with Priority Abort.

Unit step time (1s per access) makes schedules exact: a transaction that
starts at ``t`` and runs ``n`` uncontended steps commits at ``t + n``.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.protocols.twopl_pa import TwoPhaseLockingPA
from tests.conftest import R, W, commit_order, commit_time_of, run_scenario


def test_uncontended_transactions_run_in_parallel():
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[R(0), W(1)], [R(2), W(3)]],
        arrivals=[0.0, 0.0],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert system.metrics.restarts == 0


def test_read_locks_are_shared():
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[R(0), R(1)], [R(0), R(1)]],
        arrivals=[0.0, 0.0],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)


def test_lower_priority_requester_blocks():
    # T0 (earlier deadline = higher priority) write-locks page 0 first;
    # T1 arrives later, must wait until T0 commits at 2, then runs.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[W(0), R(1)], [W(0), R(2)]],
        arrivals=[0.0, 0.5],
        deadlines=[4.0, 50.0],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    # T1 blocked on page 0 until t=2, then two steps -> commits at 4.
    assert commit_time_of(system, 1) == pytest.approx(4.0)
    assert system.metrics.restarts == 0


def test_higher_priority_requester_aborts_holder():
    # T0 (low priority, late deadline) takes page 0 at t=1; T1 (urgent)
    # requests it at t=1.5... with unit steps T1 requests at t=1 arrival.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[W(0), R(1), R(2)], [W(0)]],
        arrivals=[0.0, 0.5],
        deadlines=[50.0, 3.0],
    )
    # T1 arrives at 0.5, requests page 0 (held by T0 since t=1? no: lock
    # acquired at step start, i.e. T0 holds it from t=0).  T1 has higher
    # priority -> T0 aborted and restarted at 0.5; T1 commits at 1.5.
    assert commit_time_of(system, 1) == pytest.approx(1.5)
    assert system.metrics.restarts == 1
    # T0 restarts at 0.5 but immediately conflicts with T1's write lock; it
    # waits until 1.5 then runs 3 steps.
    assert commit_time_of(system, 0) == pytest.approx(4.5)


def test_upgrade_deadlock_resolved_by_priority_abort():
    # Both read page 0, then both upgrade to write it.  Priority abort
    # resolves the classic upgrade deadlock: the urgent one wins.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[R(0), W(0)], [R(0), W(0)]],
        arrivals=[0.0, 0.0],
        deadlines=[5.0, 50.0],
    )
    assert set(commit_order(system)) == {0, 1}
    assert system.metrics.restarts >= 1
    assert check_serializable(system.history)


def test_write_after_read_conflict_blocks_writer():
    # T1 wants to write page 0 which T0 read-locked; T0 has higher
    # priority, so T1 waits for T0's commit.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[R(0), R(1)], [W(0)]],
        arrivals=[0.0, 0.0],
        deadlines=[3.0, 30.0],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(3.0)


def test_histories_serializable_under_contention():
    # A pile of transactions hammering 4 pages.
    programs = [[W(i % 4), R((i + 1) % 4), W((i + 2) % 4)] for i in range(12)]
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=programs,
        arrivals=[0.1 * i for i in range(12)],
        num_pages=4,
    )
    assert len(commit_order(system)) == 12
    assert check_serializable(system.history)


def test_aborted_holder_releases_all_locks():
    # T0 locks pages 0 and 1; urgent T1 aborts it via page 0; T2 (medium)
    # can then take page 1 without waiting for T0's restart.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[W(0), W(1), R(2)], [W(0)], [W(1)]],
        arrivals=[0.0, 1.2, 1.2],
        deadlines=[50.0, 3.0, 9.0],
    )
    assert commit_time_of(system, 1) == pytest.approx(2.2)
    assert commit_time_of(system, 2) == pytest.approx(2.2)
    assert check_serializable(system.history)
