"""Scenario tests for WAIT-50 (Haritsa's dynamic wait control)."""

import pytest

from repro.analysis.serializability import check_serializable
from repro.protocols.wait50 import Wait50
from tests.conftest import R, W, commit_time_of, run_scenario


def test_no_conflict_commits_immediately():
    system = run_scenario(
        Wait50(),
        programs=[[R(0), W(1)], [R(2)]],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(1.0)


def test_waits_for_higher_priority_conflicting_reader():
    # T0 (late deadline) finishes first at t=2 having written page 0;
    # T1 (urgent, deadline 4) read page 0 and still runs.  CS={T1},
    # HP={T1} -> 100% >= 50% -> T0 waits.  T1 finishes at 3 and commits;
    # T0 then commits (its write no longer endangers anyone).
    system = run_scenario(
        Wait50(),
        programs=[[R(1), W(0)], [R(0), R(2), R(3)]],
        deadlines=[50.0, 4.0],
    )
    assert commit_time_of(system, 1) == pytest.approx(3.0)
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    # Nobody restarted: the whole point of waiting.
    assert system.metrics.restarts == 0
    assert system.metrics.summary().deferred_commits == 1
    assert check_serializable(system.history)


def test_commits_over_lower_priority_conflicting_reader():
    # Same shape but T1 has the *later* deadline: HP empty -> commit at
    # once, T1 restarts (OCC-BC behaviour).
    system = run_scenario(
        Wait50(),
        programs=[[R(1), W(0)], [R(0), R(2), R(3)]],
        deadlines=[4.0, 50.0],
    )
    assert commit_time_of(system, 0) == pytest.approx(2.0)
    assert commit_time_of(system, 1) == pytest.approx(5.0)
    assert system.metrics.restarts == 1


def test_fifty_percent_threshold_exact():
    # Two conflicting readers, one urgent and one relaxed: HP = 1 of 2 =
    # exactly 50% -> wait (the rule is >= 50%).
    system = run_scenario(
        Wait50(),
        programs=[
            [R(3), W(0)],
            [R(0), R(4), R(5)],  # urgent reader
            [R(0), R(6), R(7)],  # relaxed reader
        ],
        deadlines=[10.0, 4.0, 50.0],
    )
    # T0 defers until T1 commits at 3; then CS={T2}, HP={} -> commit, T2
    # restarts.
    assert commit_time_of(system, 1) == pytest.approx(3.0)
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert system.metrics.restarts == 1


def test_waiter_can_be_restarted_by_other_commit():
    # T0 finishes and waits (conflicting urgent reader T1).  T2 commits a
    # write T0 read -> T0 must restart despite being finished.
    system = run_scenario(
        Wait50(),
        programs=[
            [R(5), W(0)],
            [R(0), R(6), R(7), R(8)],
            [R(9), R(9), W(5)],
        ],
        deadlines=[50.0, 4.5, 10.0],
    )
    assert system.metrics.restarts >= 1
    assert check_serializable(system.history)
    assert len(system.history) == 3


def test_threshold_parameter_validated():
    with pytest.raises(ValueError):
        Wait50(wait_threshold=0.0)
    with pytest.raises(ValueError):
        Wait50(wait_threshold=1.5)


def test_drain_with_mutual_waiters():
    # Two finished transactions whose conflict sets point at each other
    # must not deadlock: finished waiters leave the "running" conflict set.
    system = run_scenario(
        Wait50(),
        programs=[[R(1), W(0)], [R(0), W(2), R(3)]],
        deadlines=[50.0, 4.0],
    )
    assert len(system.history) == 2
    assert check_serializable(system.history)
