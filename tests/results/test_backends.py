"""Backend selection: sniffing, extensions, and the ambiguous-file error."""

import pytest

from repro.errors import ConfigurationError
from repro.results import AmbiguousStoreError, open_store
from repro.results.backends import sniff_backend


class TestSniffBackend:
    def test_nonexistent_jsonl_extension(self, tmp_path):
        assert sniff_backend(tmp_path / "runs.ndjson") == "jsonl"

    def test_nonexistent_sqlite_extension(self, tmp_path):
        assert sniff_backend(tmp_path / "runs.sqlite") == "sqlite"

    def test_nonexistent_unrecognized_extension_is_ambiguous(self, tmp_path):
        # Same contract as a pre-created empty file: pre-touching a
        # store path must never change which backend it opens as.
        with pytest.raises(AmbiguousStoreError):
            sniff_backend(tmp_path / "runs")
        with pytest.raises(AmbiguousStoreError):
            sniff_backend(tmp_path / "runs.out")

    def test_empty_file_with_jsonl_extension(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.touch()
        assert sniff_backend(path) == "jsonl"

    def test_empty_file_with_sqlite_extension(self, tmp_path):
        path = tmp_path / "runs.db"
        path.touch()
        assert sniff_backend(path) == "sqlite"

    def test_content_sniff_beats_extension(self, tmp_path):
        path = tmp_path / "runs.sqlite"  # lying extension
        path.write_text('{"fingerprint": "abc"}\n')
        assert sniff_backend(path) == "jsonl"

    def test_empty_unrecognized_extension_is_ambiguous(self, tmp_path):
        path = tmp_path / "runs.dat"
        path.touch()
        with pytest.raises(AmbiguousStoreError) as info:
            sniff_backend(path)
        # The message names the candidates so the fix is self-evident.
        message = str(info.value)
        assert "jsonl" in message and "sqlite" in message
        assert ".jsonl" in message and ".sqlite" in message
        assert info.value.candidates == ("jsonl", "sqlite")
        assert info.value.path == str(path)

    def test_ambiguous_error_is_both_config_and_value_error(self, tmp_path):
        path = tmp_path / "runs.bin"
        path.touch()
        with pytest.raises(ConfigurationError):
            sniff_backend(path)
        with pytest.raises(ValueError):
            sniff_backend(path)


class TestOpenStore:
    def test_explicit_backend_bypasses_the_sniff(self, tmp_path):
        path = tmp_path / "runs.dat"
        path.touch()
        store = open_store(path, backend="jsonl")
        try:
            assert store.backend == "jsonl"
        finally:
            store.close()

    def test_open_store_surfaces_the_ambiguity(self, tmp_path):
        path = tmp_path / "runs.dat"
        path.touch()
        with pytest.raises(AmbiguousStoreError):
            open_store(path)

    def test_instance_passthrough_checks_backend(self, tmp_path):
        store = open_store(tmp_path / "runs.jsonl")
        try:
            assert open_store(store) is store
            with pytest.raises(ConfigurationError):
                open_store(store, backend="sqlite")
        finally:
            store.close()
