"""Tests for record export (JSON/CSV) and store diffing."""

import csv
import dataclasses
import io
import json

from repro.experiments.config import baseline_config
from repro.experiments.runner import run_sweep
from repro.results.export import (
    CSV_COLUMNS,
    diff_records,
    records_from_results,
    records_to_json,
    write_csv,
)
from repro.results.fingerprint import cell_fingerprint
from repro.results.record import RunRecord
from repro.results.store import RunStore

from tests.results.test_record import make_record, make_summary

SMALL = baseline_config(
    num_transactions=80,
    warmup_commits=8,
    replications=2,
    arrival_rates=(40.0, 90.0),
    check_serializability=False,
)


def test_records_from_results_cover_the_full_grid(tmp_path):
    results = run_sweep({"SCC-2S": "scc-2s"}, SMALL)
    records = records_from_results(SMALL, results)
    assert len(records) == 4  # 1 protocol x 2 rates x 2 replications
    coords = {(r.protocol, r.arrival_rate, r.replication) for r in records}
    assert coords == {
        ("SCC-2S", 40.0, 0), ("SCC-2S", 40.0, 1),
        ("SCC-2S", 90.0, 0), ("SCC-2S", 90.0, 1),
    }


def test_records_from_results_fingerprints_match_the_store(tmp_path):
    # The export path and the store path must address cells identically.
    from repro.protocols.registry import protocol_spec

    path = tmp_path / "runs.jsonl"
    specs = {"SCC-2S": protocol_spec("scc-2s")}
    results = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path)
    exported = {
        r.fingerprint
        for r in records_from_results(SMALL, results, protocol_specs=specs)
    }
    stored = {r.fingerprint for r in RunStore(path)}
    assert exported == stored
    for record in records_from_results(SMALL, results, protocol_specs=specs):
        assert record.fingerprint == cell_fingerprint(
            SMALL, specs[record.protocol], record.arrival_rate,
            record.replication,
        )


def test_records_to_json_round_trips():
    records = [make_record(), make_record(fingerprint="ee" * 16, scenario=None)]
    payloads = json.loads(records_to_json(records))
    rebuilt = [RunRecord.from_dict(p) for p in payloads]
    assert sorted(r.fingerprint for r in rebuilt) == sorted(
        r.fingerprint for r in records
    )


def test_write_csv_emits_header_and_flat_rows():
    buffer = io.StringIO()
    count = write_csv([make_record()], buffer)
    assert count == 1
    rows = list(csv.reader(io.StringIO(buffer.getvalue())))
    assert rows[0] == list(CSV_COLUMNS)
    row = dict(zip(rows[0], rows[1]))
    assert row["protocol"] == "SCC-2S"
    assert float(row["arrival_rate"]) == 70.0
    assert json.loads(row["per_class_missed"]) == {"baseline": 2.7777777777777777}
    # Floats survive CSV exactly (shortest repr both ways).
    assert float(row["missed_ratio"]) == make_summary().missed_ratio


def test_diff_records_covers_every_summary_field():
    # Drift in a secondary measure (restarts) must be caught — the diff
    # gate has no metric blind spots.
    record_a = make_record()
    drifted = dataclasses.replace(record_a, summary=make_summary(restarts=999))
    report = diff_records([record_a], [drifted])
    ((_, _, deltas),) = report["changed"]
    assert deltas == {"restarts": (record_a.summary.restarts, 999)}
    per_class = dataclasses.replace(
        record_a, summary=make_summary(per_class_value={"baseline": 1.0})
    )
    report = diff_records([record_a], [per_class])
    assert len(report["changed"]) == 1


def test_diff_records_identical_sets():
    records = [make_record()]
    report = diff_records(records, list(records))
    assert report["identical"] == 1
    assert report["changed"] == []
    assert report["only_a"] == [] and report["only_b"] == []


def test_diff_records_flags_metric_drift_on_shared_cells():
    record_a = make_record()
    drifted = dataclasses.replace(
        record_a, summary=make_summary(missed_ratio=50.0)
    )
    only_a = make_record(fingerprint="11" * 16)
    only_b = make_record(fingerprint="22" * 16)
    report = diff_records([record_a, only_a], [drifted, only_b])
    assert report["identical"] == 0
    ((rec_a, rec_b, deltas),) = report["changed"]
    assert rec_a is record_a and rec_b is drifted
    assert deltas == {
        "missed_ratio": (record_a.summary.missed_ratio, 50.0)
    }
    assert report["only_a"] == [only_a]
    assert report["only_b"] == [only_b]


def test_write_csv_carries_protocol_spec_column():
    # The registry identity must survive the CSV path too: variants with
    # colliding display labels stay distinguishable without decoding
    # fingerprints.  Legacy (name-keyed) records leave the cell empty.
    spec = {"family": "scc-ks", "params": {"k": 3, "replacement": "lbfo"}}
    buffer = io.StringIO()
    write_csv(
        [make_record(protocol_spec=spec), make_record(fingerprint="ee" * 16)],
        buffer,
    )
    rows = list(csv.reader(io.StringIO(buffer.getvalue())))
    assert "protocol_spec" in rows[0]
    first = dict(zip(rows[0], rows[1]))
    second = dict(zip(rows[0], rows[2]))
    assert json.loads(first["protocol_spec"]) == spec
    assert second["protocol_spec"] == ""
