"""Tests for cell/config fingerprints: stability, sensitivity, reuse."""

import math

import pytest

from repro.experiments.config import baseline_config, two_class_config
from repro.results.fingerprint import (
    canonical_dumps,
    cell_fingerprint,
    config_fingerprint,
    config_payload,
    digest,
)
from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import get_scenario


def test_canonical_dumps_is_key_order_independent():
    assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps({"a": 2, "b": 1})


def test_canonical_dumps_rejects_nan():
    with pytest.raises(ValueError):
        canonical_dumps({"x": math.nan})


def test_digest_is_stable_across_calls():
    payload = config_payload(baseline_config())
    assert digest(payload) == digest(config_payload(baseline_config()))


def test_config_fingerprint_differs_across_configs():
    fingerprints = {
        config_fingerprint(baseline_config()),
        config_fingerprint(two_class_config()),
        config_fingerprint(baseline_config(seed=7)),
        config_fingerprint(baseline_config(num_transactions=999)),
        config_fingerprint(get_scenario("flash-sale-hotspot").to_config()),
    }
    assert len(fingerprints) == 5


def test_grid_axes_do_not_enter_the_fingerprint():
    # Extending the sweep axis or replication count must reuse stored
    # cells, so arrival_rates/replications are excluded by design.
    base = baseline_config()
    wider = baseline_config(arrival_rates=(10.0, 999.0), replications=9)
    assert config_fingerprint(base) == config_fingerprint(wider)


def test_none_workload_equals_explicit_default_spec():
    # config.workload=None means the paper baseline; an explicit default
    # WorkloadSpec generates a bit-identical workload and must hash alike.
    assert config_fingerprint(baseline_config()) == config_fingerprint(
        baseline_config(workload=WorkloadSpec())
    )


def test_cell_fingerprint_covers_coordinates():
    config = baseline_config()
    base = cell_fingerprint(config, "SCC-2S", 50.0, 0)
    assert cell_fingerprint(config, "SCC-2S", 50.0, 0) == base
    assert cell_fingerprint(config, "OCC-BC", 50.0, 0) != base
    assert cell_fingerprint(config, "SCC-2S", 60.0, 0) != base
    assert cell_fingerprint(config, "SCC-2S", 50.0, 1) != base


def test_cell_fingerprint_accepts_precomputed_payload():
    config = baseline_config()
    payload = config_payload(config)
    assert cell_fingerprint(payload, "SCC-2S", 50.0, 0) == cell_fingerprint(
        config, "SCC-2S", 50.0, 0
    )


# ----------------------------------------------------------------------
# protocol-spec identity (the registry closes the name-collision trap)
# ----------------------------------------------------------------------


def test_cell_fingerprint_distinguishes_parameterized_variants():
    # The regression the registry exists for: scc-ks?k=2 vs scc-ks?k=3
    # must never share a cell, even though both could display "SCC-kS".
    from repro.protocols.registry import parse_protocol_spec

    config = baseline_config()
    k2 = cell_fingerprint(config, parse_protocol_spec("scc-ks?k=2"), 50.0, 0)
    k3 = cell_fingerprint(config, parse_protocol_spec("scc-ks?k=3"), 50.0, 0)
    assert k2 != k3


def test_cell_fingerprint_spec_is_stable_across_spellings():
    # Default-filled and explicit spellings of the same spec hash alike.
    from repro.protocols.registry import parse_protocol_spec

    config = baseline_config()
    assert cell_fingerprint(
        config, parse_protocol_spec("scc-ks"), 50.0, 0
    ) == cell_fingerprint(
        config, parse_protocol_spec("scc-ks?k=2&replacement=lbfo"), 50.0, 0
    )


def test_cell_fingerprint_spec_differs_from_bare_name():
    # Spec identity is a schema change by design: a spec-driven sweep
    # does not silently reuse name-addressed cells from legacy stores.
    from repro.protocols.registry import parse_protocol_spec

    config = baseline_config()
    assert cell_fingerprint(
        config, parse_protocol_spec("scc-2s"), 50.0, 0
    ) != cell_fingerprint(config, "SCC-2S", 50.0, 0)


def test_protocol_identity_helper():
    from repro.protocols.registry import parse_protocol_spec
    from repro.results.fingerprint import protocol_identity

    spec = parse_protocol_spec("wait-50?wait_threshold=0.25")
    assert protocol_identity(spec) == spec.fingerprint_payload()
    assert protocol_identity("WAIT-25") == "WAIT-25"
