"""Tests for RunRecord / RunSummary canonical serialization."""

import json

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.metrics.stats import RunSummary
from repro.results.record import RECORD_SCHEMA, RunRecord


def make_summary(**overrides) -> RunSummary:
    values = dict(
        committed=108,
        missed_ratio=2.7777777777777777,
        avg_tardiness_late=0.03860214999917,
        avg_tardiness_all=0.0010722819444214,
        system_value=99.89321508534233,
        avg_response_time=0.13119754623119,
        restarts=17,
        shadow_aborts=23,
        wasted_work=1.2345678901234567,
        useful_work=13.876543210987654,
        deferred_commits=4,
        per_class_missed={"baseline": 2.7777777777777777},
        per_class_value={"baseline": 99.89321508534233},
    )
    values.update(overrides)
    return RunSummary(**values)


def make_record(**overrides) -> RunRecord:
    values = dict(
        fingerprint="ab" * 16,
        config_fingerprint="cd" * 16,
        protocol="SCC-2S",
        arrival_rate=70.0,
        replication=1,
        seed=901995,
        summary=make_summary(),
        scenario="paper-baseline",
        elapsed=0.125,
    )
    values.update(overrides)
    return RunRecord(**values)


def test_summary_round_trips_bit_identically_through_json():
    summary = make_summary()
    rebuilt = RunSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
    assert rebuilt == summary


def test_summary_from_dict_rejects_schema_drift():
    payload = make_summary().to_dict()
    payload["surprise_metric"] = 1.0
    with pytest.raises(ProtocolError, match="surprise_metric"):
        RunSummary.from_dict(payload)
    short = make_summary().to_dict()
    del short["committed"]
    with pytest.raises(ProtocolError, match="committed"):
        RunSummary.from_dict(short)


def test_record_round_trips_bit_identically_through_json():
    record = make_record()
    rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert rebuilt == record


def test_record_serializes_schema_version():
    assert make_record().to_dict()["schema"] == RECORD_SCHEMA


def test_record_from_dict_rejects_other_schema_versions():
    payload = make_record().to_dict()
    payload["schema"] = RECORD_SCHEMA + 1
    with pytest.raises(ConfigurationError, match="schema"):
        RunRecord.from_dict(payload)


def test_schema_1_records_still_read():
    # Migration path: stores written before the protocol-spec bump stay
    # listable/exportable; the missing fields read as None.
    payload = make_record().to_dict()
    payload["schema"] = 1
    del payload["protocol_spec"]
    del payload["telemetry"]
    record = RunRecord.from_dict(payload)
    assert record.protocol == "SCC-2S"
    assert record.protocol_spec is None
    assert record.telemetry is None


def test_schema_2_records_still_read():
    # Pre-telemetry stores: the missing telemetry block reads as None.
    payload = make_record().to_dict()
    payload["schema"] = 2
    del payload["telemetry"]
    record = RunRecord.from_dict(payload)
    assert record.protocol == "SCC-2S"
    assert record.telemetry is None


def test_schema_1_payload_with_spec_key_rejected():
    payload = make_record().to_dict()
    payload["schema"] = 1  # claims v1 but carries v2/v3 keys
    del payload["telemetry"]
    with pytest.raises(ConfigurationError, match="protocol_spec"):
        RunRecord.from_dict(payload)


def test_schema_2_payload_with_telemetry_key_rejected():
    payload = make_record().to_dict()
    payload["schema"] = 2  # claims v2 but carries the v3 key
    with pytest.raises(ConfigurationError, match="telemetry"):
        RunRecord.from_dict(payload)


def test_telemetry_block_round_trips():
    telemetry = {
        "schema": 1,
        "wall_clock": 0.25,
        "events_fired": 1234,
        "peak_pending_events": 56,
        "counters": {"aborts": 3, "commits": 100},
        "gauges": {"peak_live_shadows": 7},
    }
    record = make_record(telemetry=telemetry)
    rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert rebuilt == record
    assert rebuilt.telemetry == telemetry


def test_from_outcome_carries_telemetry():
    from repro.experiments.config import baseline_config
    from repro.experiments.parallel import CellOutcome, SweepCell

    config = baseline_config()
    cell = SweepCell(
        index=0, protocol="SCC-2S", rate_index=0, arrival_rate=50.0,
        replication=0,
    )
    telemetry = {"schema": 1, "counters": {"commits": 1}, "gauges": {}}
    outcome = CellOutcome(
        cell=cell, summary=make_summary(), error=None, elapsed=0.5,
        telemetry=telemetry,
    )
    record = RunRecord.from_outcome(config, outcome)
    assert record.telemetry == telemetry


def test_protocol_spec_round_trips():
    spec = {"family": "scc-ks", "params": {"k": 3, "replacement": "lbfo"}}
    record = make_record(protocol_spec=spec)
    rebuilt = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert rebuilt == record
    assert rebuilt.protocol_spec == spec


def test_from_outcome_uses_spec_identity_when_given():
    from repro.experiments.config import baseline_config
    from repro.experiments.parallel import CellOutcome, SweepCell
    from repro.protocols.registry import parse_protocol_spec
    from repro.results.fingerprint import cell_fingerprint

    config = baseline_config()
    cell = SweepCell(
        index=0, protocol="SCC-3S", rate_index=0, arrival_rate=50.0,
        replication=0,
    )
    outcome = CellOutcome(
        cell=cell, summary=make_summary(), error=None, elapsed=0.5
    )
    spec = parse_protocol_spec("scc-ks?k=3")
    record = RunRecord.from_outcome(config, outcome, protocol_spec=spec)
    assert record.fingerprint == cell_fingerprint(config, spec, 50.0, 0)
    assert record.protocol == "SCC-3S"
    assert record.protocol_spec == spec.to_dict()
    legacy = RunRecord.from_outcome(config, outcome)
    assert legacy.fingerprint == cell_fingerprint(config, "SCC-3S", 50.0, 0)
    assert legacy.protocol_spec is None


def test_record_from_dict_rejects_missing_and_unknown_keys():
    payload = make_record().to_dict()
    payload["extra"] = 1
    with pytest.raises(ConfigurationError, match="extra"):
        RunRecord.from_dict(payload)
    short = make_record().to_dict()
    del short["protocol"]
    with pytest.raises(ConfigurationError, match="protocol"):
        RunRecord.from_dict(short)


def test_record_from_dict_rejects_non_dict():
    with pytest.raises(ConfigurationError):
        RunRecord.from_dict("not a dict")


def test_record_none_scenario_round_trips():
    record = make_record(scenario=None)
    assert RunRecord.from_dict(record.to_dict()).scenario is None
