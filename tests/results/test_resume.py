"""Store-backed sweeps: resume semantics, failure paths, bit-identity."""

import pytest

from repro.core.scc_2s import SCC2S
from repro.errors import SweepExecutionError
from repro.experiments.config import baseline_config
from repro.experiments.figures import run_scenario
from repro.experiments.parallel import CellError, CellOutcome
from repro.experiments.runner import assemble_results, build_cells, run_sweep
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.results import RunStore

SMALL = baseline_config(
    num_transactions=80,
    warmup_commits=8,
    replications=2,
    arrival_rates=(40.0, 90.0),
    check_serializability=False,
)


def counting(factory):
    """Wrap a protocol factory, counting how many cells actually ran."""
    calls = []

    def wrapped():
        calls.append(1)
        return factory()

    return wrapped, calls


def test_cold_store_run_matches_storeless_run(tmp_path):
    protocols = {"SCC-2S": "scc-2s", "OCC-BC": "occ-bc"}
    plain = run_sweep(protocols, SMALL)
    stored = run_sweep(protocols, SMALL, store=tmp_path / "runs.jsonl")
    for name in protocols:
        assert stored[name].replications == plain[name].replications


def test_resume_runs_only_missing_cells_and_is_bit_identical(tmp_path):
    # Counting how many cells actually ran requires legacy factories
    # (label-as-identity), which run_sweep now warns about; both the
    # populating and the resuming sweeps must share that identity.
    path = tmp_path / "runs.jsonl"
    protocols = {"SCC-2S": SCC2S, "OCC-BC": OCCBroadcastCommit}
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        cold = run_sweep(protocols, SMALL)

        # Interrupted sweep: only the first arrival rate got done.
        run_sweep(protocols, SMALL, arrival_rates=[40.0], store=path)
        assert len(RunStore(path)) == 4

        factory, calls = counting(SCC2S)
        factory2, calls2 = counting(OCCBroadcastCommit)
        resumed = run_sweep(
            {"SCC-2S": factory, "OCC-BC": factory2}, SMALL, store=path
        )
    # Only the 90.0-rate cells ran (2 protocols x 2 replications).
    assert len(calls) == 2 and len(calls2) == 2
    for name in protocols:
        assert resumed[name].replications == cold[name].replications
        assert resumed[name].arrival_rates == cold[name].arrival_rates


def test_fully_warm_store_runs_nothing(tmp_path):
    path = tmp_path / "runs.jsonl"
    protocols = {"SCC-2S": SCC2S}
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        first = run_sweep(protocols, SMALL, store=path)
        factory, calls = counting(SCC2S)
        warm = run_sweep({"SCC-2S": factory}, SMALL, store=path)
    assert calls == []
    assert warm["SCC-2S"].replications == first["SCC-2S"].replications


def test_truncated_store_reruns_only_the_lost_cell(tmp_path):
    path = tmp_path / "runs.jsonl"
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        run_sweep(
            {"SCC-2S": SCC2S, "OCC-BC": OCCBroadcastCommit}, SMALL, store=path
        )
    with open(path, "rb+") as fh:
        data = fh.read()
        fh.seek(0)
        fh.truncate()
        fh.write(data[:-30])  # simulate a kill mid-append
    recovered = RunStore(path)
    assert recovered.corrupt_lines == 1
    assert len(recovered) == 7
    factory, calls = counting(SCC2S)
    factory2, calls2 = counting(OCCBroadcastCommit)
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        cold = run_sweep(
            {"SCC-2S": SCC2S, "OCC-BC": OCCBroadcastCommit}, SMALL
        )
        resumed = run_sweep(
            {"SCC-2S": factory, "OCC-BC": factory2}, SMALL, store=recovered
        )
    assert len(calls) + len(calls2) == 1  # just the torn cell
    for name in ("SCC-2S", "OCC-BC"):
        assert resumed[name].replications == cold[name].replications


def test_store_accepts_instance_and_path_equally(tmp_path):
    path = tmp_path / "runs.jsonl"
    via_path = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=str(path))
    via_instance = run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=RunStore(path))
    assert via_path["SCC-2S"].replications == via_instance["SCC-2S"].replications


def test_failed_cells_are_not_persisted_and_retry_on_rerun(tmp_path):
    path = tmp_path / "runs.jsonl"

    class Exploding:
        name = "EXPLODING"

        def __getattr__(self, attr):
            raise RuntimeError("protocol cannot run")

    config = SMALL.scaled(replications=1, arrival_rates=[40.0])
    # BAD is not registry-representable, so it stays a (warned-about)
    # legacy factory; SCC-2S keeps factory identity to match it.
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        with pytest.raises(SweepExecutionError) as excinfo:
            run_sweep({"SCC-2S": SCC2S, "BAD": Exploding}, config, store=path)
    assert [f.cell.protocol for f in excinfo.value.failures] == ["BAD"]
    # The good cell was persisted before the sweep raised; the bad one
    # was not, so a fixed rerun retries exactly it.
    store = RunStore(path)
    assert len(store) == 1
    assert store.records()[0].protocol == "SCC-2S"
    factory, calls = counting(OCCBroadcastCommit)
    with pytest.warns(DeprecationWarning, match="protocol factories"):
        fixed = run_sweep({"SCC-2S": SCC2S, "BAD": factory}, config, store=path)
    assert len(calls) == 1
    assert set(fixed) == {"SCC-2S", "BAD"}


def test_store_refuses_custom_resource_factories(tmp_path):
    # Resource managers are not fingerprinted; caching across resource
    # models must be an error, never silently-wrong cached results.
    from repro.errors import ConfigurationError
    from repro.system.resources import FiniteResources

    factory = lambda cfg: FiniteResources(cfg.cpu_time, cfg.io_time, num_servers=2)
    with pytest.raises(ConfigurationError, match="resources"):
        run_sweep({"SCC-2S": "scc-2s"}, SMALL, resources=factory,
                  store=tmp_path / "runs.jsonl")


def test_scenario_name_is_recorded_as_metadata(tmp_path):
    path = tmp_path / "runs.jsonl"
    run_scenario(
        "flash-sale-hotspot",
        protocols={"SCC-2S": "scc-2s"},
        arrival_rates=[60.0],
        store=path,
        num_transactions=80,
        warmup_commits=8,
        replications=1,
        check_serializability=False,
    )
    records = RunStore(path).records()
    assert records and all(r.scenario == "flash-sale-hotspot" for r in records)


def test_store_round_trip_preserves_seed_and_coordinates(tmp_path):
    path = tmp_path / "runs.jsonl"
    run_sweep({"SCC-2S": "scc-2s"}, SMALL, store=path)
    for record in RunStore(path):
        assert record.seed == SMALL.seed
        assert record.protocol == "SCC-2S"
        assert record.arrival_rate in SMALL.arrival_rates
        assert record.replication in (0, 1)
        assert record.elapsed > 0


# ----------------------------------------------------------------------
# assemble_results failure aggregation
# ----------------------------------------------------------------------


def _outcome(cell, summary=None, error=None):
    return CellOutcome(cell=cell, summary=summary, error=error, elapsed=0.0)


def test_assemble_results_aggregates_every_failure():
    cells = build_cells(["P1", "P2"], [40.0], 2)
    error = CellError(exc_type="RuntimeError", message="boom", traceback="tb")
    outcomes = [
        _outcome(cells[0], error=error),
        _outcome(cells[1], error=error),
        _outcome(cells[2], error=error),
        _outcome(cells[3], error=error),
    ]
    with pytest.raises(SweepExecutionError) as excinfo:
        assemble_results(["P1", "P2"], [40.0], 2, outcomes)
    failures = excinfo.value.failures
    assert len(failures) == 4
    assert [f.cell.protocol for f in failures] == ["P1", "P1", "P2", "P2"]
    assert "4 sweep cell(s) failed" in str(excinfo.value)
    assert "RuntimeError" in str(excinfo.value)


def test_assemble_results_mixed_failures_report_only_the_failed_cells():
    cells = build_cells(["P1"], [40.0, 90.0], 1)
    error = CellError(exc_type="ValueError", message="bad", traceback="tb")
    from tests.results.test_record import make_summary

    outcomes = [
        _outcome(cells[0], summary=make_summary()),
        _outcome(cells[1], error=error),
    ]
    with pytest.raises(SweepExecutionError) as excinfo:
        assemble_results(["P1"], [40.0, 90.0], 1, outcomes)
    assert [f.cell.arrival_rate for f in excinfo.value.failures] == [90.0]
