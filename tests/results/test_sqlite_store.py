"""SQLite-backend-specific store tests: pragmas, sniffing, concurrency.

The shared backend contract lives in ``tests/results/test_store_contract.py``;
here we pin down what only the SQLite backend promises: WAL mode,
backend selection in :func:`repro.results.backends.open_store`,
multi-process writers against one file, kill-safety (no torn records,
ever — the recovery story the JSONL store approximates with torn-tail
skipping), and raw-row corruption handling.
"""

import json
import multiprocessing
import os
import signal
import sqlite3
import time

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.results import RunStore, SQLiteRunStore, diff_records, open_store
from repro.results.backends import sniff_backend

from tests.results.test_record import make_record

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multi-process store tests need the fork start method",
)

_mp = multiprocessing.get_context("fork")


# ----------------------------------------------------------------------
# pragmas and backend selection
# ----------------------------------------------------------------------


def test_store_runs_in_wal_mode(tmp_path):
    store = SQLiteRunStore(tmp_path / "runs.sqlite")
    (mode,) = store._connect().execute("PRAGMA journal_mode").fetchone()
    assert mode == "wal"
    store.close()


def test_open_store_defaults_to_jsonl(tmp_path):
    store = open_store(tmp_path / "runs.jsonl")
    assert isinstance(store, RunStore)
    store.close()


def test_open_store_picks_sqlite_by_extension(tmp_path):
    for suffix in (".sqlite", ".sqlite3", ".db"):
        store = open_store(tmp_path / f"runs{suffix}")
        assert isinstance(store, SQLiteRunStore), suffix
        store.close()


def test_open_store_sniffs_existing_sqlite_file_despite_extension(tmp_path):
    path = tmp_path / "runs.jsonl"  # lying extension
    with SQLiteRunStore(path) as store:
        store.append(make_record())
    assert sniff_backend(path) == "sqlite"
    reopened = open_store(path)
    assert isinstance(reopened, SQLiteRunStore)
    assert len(reopened) == 1
    reopened.close()


def test_open_store_explicit_backend_beats_sniffing(tmp_path):
    store = open_store(tmp_path / "runs.jsonl", backend="sqlite")
    assert isinstance(store, SQLiteRunStore)
    store.close()


def test_open_store_passes_instances_through(tmp_path):
    store = SQLiteRunStore(tmp_path / "runs.sqlite")
    assert open_store(store) is store
    assert open_store(store, backend="sqlite") is store
    with pytest.raises(ConfigurationError, match="jsonl"):
        open_store(store, backend="jsonl")
    store.close()


def test_open_store_rejects_unknown_backend(tmp_path):
    with pytest.raises(ConfigurationError, match="unknown store backend"):
        open_store(tmp_path / "runs.jsonl", backend="parquet")


def test_opening_a_non_sqlite_file_raises_repro_error(tmp_path):
    path = tmp_path / "runs.sqlite"
    path.write_text("this is definitely not a database\n" * 10)
    with pytest.raises(ReproError, match="SQLite run store"):
        SQLiteRunStore(path)


# ----------------------------------------------------------------------
# raw-row corruption (at-rest damage)
# ----------------------------------------------------------------------


def test_corrupt_payload_rows_are_counted_and_skipped(tmp_path):
    path = tmp_path / "runs.sqlite"
    with SQLiteRunStore(path) as store:
        store.append(make_record())
    conn = sqlite3.connect(path)
    conn.execute(
        "INSERT INTO run_records (fingerprint, payload) VALUES (?, ?)",
        ("ff" * 16, "{bit rot"),
    )
    conn.commit()
    conn.close()
    store = SQLiteRunStore(path)
    assert store.corrupt_lines == 1
    assert len(store) == 1
    assert store.compact() == 1  # the corrupt row is reclaimed
    assert store.corrupt_lines == 0
    store.close()
    assert SQLiteRunStore(path).corrupt_lines == 0


# ----------------------------------------------------------------------
# multi-process writers
# ----------------------------------------------------------------------


def _writer(path, writer_id, fingerprints, barrier):
    """Append one record per fingerprint; elapsed encodes the writer."""
    store = SQLiteRunStore(path)
    barrier.wait()
    for fingerprint in fingerprints:
        store.append(make_record(fingerprint=fingerprint, elapsed=float(writer_id)))
    store.close()


def test_concurrent_writers_with_overlapping_fingerprints(tmp_path):
    path = tmp_path / "runs.sqlite"
    fingerprints = [f"{i:02d}" * 16 for i in range(8)]
    barrier = _mp.Barrier(3)
    procs = [
        _mp.Process(target=_writer, args=(path, wid, fingerprints, barrier))
        for wid in range(3)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    store = SQLiteRunStore(path)
    # Every append landed; no writes were lost to contention.
    assert store.corrupt_lines == 0
    conn = store._connect()
    (rows,) = conn.execute("SELECT COUNT(*) FROM run_records").fetchone()
    assert rows == 3 * len(fingerprints)
    # The last-wins index resolves each overlapping fingerprint to a
    # single winner, and the winner is whichever writer's row got the
    # highest seq — i.e. index and table agree.
    assert len(store) == len(fingerprints)
    for fingerprint in fingerprints:
        (last,) = conn.execute(
            "SELECT payload FROM run_records WHERE fingerprint = ? "
            "ORDER BY seq DESC LIMIT 1",
            (fingerprint,),
        ).fetchone()
        assert store.get(fingerprint).elapsed == json.loads(last)["elapsed"]
    # Apart from the writer-identifying elapsed, every writer wrote the
    # same summaries, so the diff against a reference store is clean.
    reference = [make_record(fingerprint=f) for f in fingerprints]
    report = diff_records(store.records(), reference)
    assert report["changed"] == []
    assert report["identical"] == len(fingerprints)
    assert report["only_a"] == report["only_b"] == []
    store.close()


def _doomed_writer(path, ready):
    """Append records forever until SIGKILLed mid-stream."""
    store = SQLiteRunStore(path)
    i = 0
    while True:
        store.append(make_record(fingerprint=f"{i % 100:02d}" * 16, elapsed=9.0))
        i += 1
        if i == 5:
            ready.set()


def test_killed_writer_leaves_no_torn_records(tmp_path):
    path = tmp_path / "runs.sqlite"
    ready = _mp.Event()
    proc = _mp.Process(target=_doomed_writer, args=(path, ready))
    proc.start()
    assert ready.wait(timeout=60)
    time.sleep(0.05)  # let it get deeper into the append loop
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=60)
    store = SQLiteRunStore(path)
    # Transactions mean the kill can only lose the in-flight append,
    # never tear one: zero corrupt rows, and every surviving record is
    # complete and parseable.
    assert store.corrupt_lines == 0
    assert len(store) >= 5
    for record in store:
        assert record.elapsed == 9.0
    # The recovered store accepts fresh appends.
    store.append(make_record(fingerprint="aa" * 16, elapsed=1.0))
    store.close()
    assert open_store(path).get("aa" * 16).elapsed == 1.0


def test_reader_sees_consistent_snapshot_while_writer_appends(tmp_path):
    path = tmp_path / "runs.sqlite"
    with SQLiteRunStore(path) as store:
        for i in range(4):
            store.append(make_record(fingerprint=f"{i:02d}" * 16))
    barrier = _mp.Barrier(2)
    proc = _mp.Process(
        target=_writer, args=(path, 7, [f"{i:02d}" * 16 for i in range(4, 8)], barrier)
    )
    proc.start()
    barrier.wait()
    # WAL readers never block on the writer and always see a complete
    # prefix of the append sequence.
    for _ in range(10):
        snapshot = SQLiteRunStore(path)
        assert snapshot.corrupt_lines == 0
        assert 4 <= len(snapshot) <= 8
        snapshot.close()
    proc.join(timeout=60)
    assert proc.exitcode == 0
    final = SQLiteRunStore(path)
    assert len(final) == 8
    final.close()
