"""JSONL-specific RunStore tests: file layout, torn tails, corruption.

The backend-agnostic store behaviour (append/get/last-wins/compact/...)
is covered for every backend by ``tests/results/test_store_contract.py``;
this module keeps only what is unique to the append-only JSONL file
format.
"""

import json
import os

from repro.results.store import RunStore, write_json_atomic

from tests.results.test_record import make_record


def test_missing_file_is_an_empty_store(tmp_path):
    path = tmp_path / "never-written.jsonl"
    store = RunStore(path)
    assert len(store) == 0
    assert not os.path.exists(path)  # file materializes on first append


def test_truncated_last_line_is_tolerated(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = RunStore(path)
    store.append(make_record(fingerprint="aa" * 16))
    store.append(make_record(fingerprint="bb" * 16))
    store.close()
    with open(path, "rb+") as fh:
        data = fh.read()
        fh.seek(0)
        fh.truncate()
        fh.write(data[:-25])  # kill mid-append: last line cut short
    recovered = RunStore(path)
    assert recovered.corrupt_lines == 1
    assert len(recovered) == 1
    assert recovered.get("aa" * 16) is not None
    assert recovered.get("bb" * 16) is None


def test_garbage_and_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "runs.jsonl"
    record = make_record()
    with open(path, "w") as fh:
        fh.write("\n")
        fh.write("not json at all\n")
        fh.write(json.dumps({"schema": 99, "weird": True}) + "\n")
        fh.write(json.dumps(record.to_dict()) + "\n")
    store = RunStore(path)
    assert store.corrupt_lines == 2  # blank lines don't count as corrupt
    assert len(store) == 1
    assert store.get(record.fingerprint) == record


def test_appending_after_recovery_keeps_the_store_readable(tmp_path):
    path = tmp_path / "runs.jsonl"
    with open(path, "w") as fh:
        fh.write('{"schema": 1, "trunc')  # torn line, no newline
    store = RunStore(path)
    assert store.corrupt_lines == 1
    store.append(make_record())
    store.close()
    # The torn line and the fresh record now share the file; only the
    # torn line is lost.
    reopened = RunStore(path)
    assert len(reopened) == 1
    assert reopened.corrupt_lines == 1


def test_compact_rewrites_the_file_to_live_lines_only(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = RunStore(path)
    store.append(make_record(elapsed=1.0))
    store.append(make_record(elapsed=2.0))
    store.close()
    with open(path, "a") as fh:
        fh.write("garbage that compaction should drop\n")
    store = RunStore(path)
    assert store.corrupt_lines == 1
    dropped = store.compact()
    assert dropped == 2  # one superseded record + one garbage line
    assert store.corrupt_lines == 0
    with open(path) as fh:
        lines = [line for line in fh.read().split("\n") if line.strip()]
    assert len(lines) == 1
    assert json.loads(lines[0])["elapsed"] == 2.0
    assert [p.name for p in tmp_path.iterdir()] == ["runs.jsonl"]  # no temp litter


def test_write_json_atomic_replaces_whole_documents(tmp_path):
    path = tmp_path / "doc.json"
    write_json_atomic(path, {"a": 1})
    write_json_atomic(path, {"b": 2})
    with open(path) as fh:
        assert json.load(fh) == {"b": 2}
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]  # no temp litter
