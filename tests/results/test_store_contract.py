"""Backend-agnostic RunStore contract, run against every store backend.

Every backend registered in ``repro.results.backends`` must present the
same observable behaviour: append/get/len/iter, last-wins fingerprint
resolution (in memory *and* across a reload), record-type checking,
compaction, and bit-identical schema-3 round-trips.  JSONL- or
SQLite-specific behaviour (torn tails, WAL pragmas, ...) lives in the
per-backend test modules.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.stats import RunSummary
from repro.results import RunRecord
from repro.results.backends import STORE_BACKENDS, merge_stores, open_store, store_class

from tests.results.test_record import make_record, make_summary

_SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}


@pytest.fixture(params=STORE_BACKENDS)
def backend(request):
    """The backend name under test; parametrizes every test in this module."""
    return request.param


@pytest.fixture
def make_store(backend, tmp_path):
    """Factory opening (or reopening) a store of the current backend."""
    counter = {"n": 0}

    def _make(name=None):
        if name is None:
            counter["n"] += 1
            name = f"runs-{counter['n']}"
        return open_store(tmp_path / (name + _SUFFIX[backend]), backend=backend)

    return _make


def test_append_then_get(make_store):
    store = make_store()
    record = make_record()
    store.append(record)
    assert store.get(record.fingerprint) == record
    assert record.fingerprint in store
    assert len(store) == 1
    assert list(store) == [record]
    store.close()


def test_get_misses_return_none(make_store):
    store = make_store()
    assert store.get("ff" * 16) is None
    assert "ff" * 16 not in store


def test_records_survive_reopen_in_append_order(make_store):
    with make_store("shared") as store:
        store.append(make_record(fingerprint="aa" * 16))
        store.append(make_record(fingerprint="bb" * 16))
    reopened = make_store("shared")
    assert len(reopened) == 2
    assert [r.fingerprint for r in reopened] == ["aa" * 16, "bb" * 16]
    assert reopened.corrupt_lines == 0
    reopened.close()


def test_parent_directories_are_created(backend, tmp_path):
    path = tmp_path / "deep" / "nested" / ("runs" + _SUFFIX[backend])
    store = open_store(path, backend=backend)
    store.append(make_record())
    store.close()
    reopened = open_store(path, backend=backend)
    assert len(reopened) == 1
    reopened.close()


def test_last_record_wins_per_fingerprint(make_store):
    store = make_store("shared")
    store.append(make_record(elapsed=1.0))
    store.append(make_record(elapsed=2.0))
    assert len(store) == 1
    assert store.records()[0].elapsed == 2.0
    store.close()
    # The superseding record also wins after a reload.
    reopened = make_store("shared")
    assert reopened.records()[0].elapsed == 2.0
    reopened.close()


def test_ordering_is_first_appearance_even_after_supersede(make_store):
    store = make_store()
    store.append(make_record(fingerprint="aa" * 16, elapsed=1.0))
    store.append(make_record(fingerprint="bb" * 16))
    store.append(make_record(fingerprint="aa" * 16, elapsed=9.0))
    assert [r.fingerprint for r in store] == ["aa" * 16, "bb" * 16]
    assert store.get("aa" * 16).elapsed == 9.0
    store.close()


def test_append_rejects_non_records(make_store):
    store = make_store()
    with pytest.raises(ConfigurationError):
        store.append({"schema": 1})
    store.close()


def test_extend_appends_every_record(make_store):
    store = make_store()
    store.extend(
        [
            make_record(fingerprint="aa" * 16),
            make_record(fingerprint="bb" * 16),
            make_record(fingerprint="aa" * 16, elapsed=7.0),
        ]
    )
    assert len(store) == 2
    assert store.get("aa" * 16).elapsed == 7.0
    store.close()


def test_context_manager_closes_and_store_stays_readable(make_store):
    with make_store("shared") as store:
        store.append(make_record())
    with make_store("shared") as reopened:
        assert len(reopened) == 1


def test_compact_drops_superseded_records(make_store):
    store = make_store("shared")
    for elapsed in (1.0, 2.0, 3.0):
        store.append(make_record(elapsed=elapsed))
    store.append(make_record(fingerprint="bb" * 16))
    dropped = store.compact()
    assert dropped == 2
    assert len(store) == 2
    assert store.records()[0].elapsed == 3.0
    store.close()
    reopened = make_store("shared")
    assert len(reopened) == 2
    assert reopened.get(make_record().fingerprint).elapsed == 3.0
    reopened.close()


def test_compact_is_idempotent(make_store):
    store = make_store()
    store.append(make_record())
    assert store.compact() == 0
    assert store.compact() == 0
    assert len(store) == 1
    store.close()


def test_schema3_record_round_trips_bit_identically(make_store):
    record = make_record(
        summary=make_summary(per_class_missed={"update": 1.5, "query": 0.25}),
        scenario=None,
    )
    with make_store("shared") as store:
        store.append(record)
    reopened = make_store("shared")
    rebuilt = reopened.get(record.fingerprint)
    assert rebuilt == record
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
        record.to_dict(), sort_keys=True
    )
    reopened.close()


def test_merge_stores_is_idempotent_and_last_shard_wins(make_store):
    shard_a = make_store()
    shard_b = make_store()
    shard_a.append(make_record(fingerprint="aa" * 16, elapsed=1.0))
    shard_a.append(make_record(fingerprint="bb" * 16))
    shard_b.append(make_record(fingerprint="aa" * 16, elapsed=2.0))
    dest = make_store()
    assert merge_stores(dest, [shard_a, shard_b]) == 3
    assert len(dest) == 2
    assert dest.get("aa" * 16).elapsed == 2.0  # later shard wins the collision
    # Replaying a shard whose records already match adds nothing new,
    # and replaying both shards converges back to the same final state.
    assert merge_stores(dest, [shard_b]) == 0
    merge_stores(dest, [shard_a, shard_b])
    assert len(dest) == 2
    assert dest.get("aa" * 16).elapsed == 2.0
    for store in (shard_a, shard_b, dest):
        store.close()


def test_merge_across_backends(backend, tmp_path):
    """A shard of any backend merges into a destination of any other."""
    other = "sqlite" if backend == "jsonl" else "jsonl"
    shard = open_store(tmp_path / ("shard" + _SUFFIX[backend]), backend=backend)
    shard.append(make_record())
    dest = open_store(tmp_path / ("dest" + _SUFFIX[other]), backend=other)
    assert merge_stores(dest, [shard]) == 1
    assert dest.get(make_record().fingerprint) == make_record()
    shard.close()
    dest.close()


def test_store_class_resolves_registered_backends(backend):
    cls = store_class(backend)
    assert cls.backend == backend
    with pytest.raises(ConfigurationError, match="unknown store backend"):
        store_class("parquet")


# ----------------------------------------------------------------------
# property: arbitrary schema-3 records survive a store round trip
# ----------------------------------------------------------------------

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_class_map = st.dictionaries(
    st.text(min_size=1, max_size=8), _finite, min_size=0, max_size=3
)

_summaries = st.builds(
    RunSummary,
    committed=st.integers(min_value=0, max_value=10**6),
    missed_ratio=_finite,
    avg_tardiness_late=_finite,
    avg_tardiness_all=_finite,
    system_value=_finite,
    avg_response_time=_finite,
    restarts=st.integers(min_value=0, max_value=10**6),
    shadow_aborts=st.integers(min_value=0, max_value=10**6),
    wasted_work=_finite,
    useful_work=_finite,
    deferred_commits=st.integers(min_value=0, max_value=10**6),
    per_class_missed=_class_map,
    per_class_value=_class_map,
)

_records = st.builds(
    RunRecord,
    fingerprint=st.text(alphabet="0123456789abcdef", min_size=32, max_size=32),
    config_fingerprint=st.text(alphabet="0123456789abcdef", min_size=32, max_size=32),
    protocol=st.text(min_size=1, max_size=16),
    arrival_rate=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    replication=st.integers(min_value=0, max_value=10**4),
    seed=st.integers(min_value=0, max_value=2**31),
    summary=_summaries,
    scenario=st.one_of(st.none(), st.text(min_size=1, max_size=16)),
    elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(records=st.lists(_records, min_size=1, max_size=6))
def test_any_schema3_records_round_trip_through_any_backend(records, backend, tmp_path):
    # tmp_path is shared across hypothesis examples; isolate each one.
    path = tmp_path / f"prop-{len(list(tmp_path.iterdir()))}" / "runs"
    store = open_store(path, backend=backend)
    try:
        for record in records:
            store.append(record)
        expected = {}
        order = []
        for record in records:
            if record.fingerprint not in expected:
                order.append(record.fingerprint)
            expected[record.fingerprint] = record
        assert [r.fingerprint for r in store] == order
        store.close()
        reopened = open_store(path, backend=backend)
        assert reopened.corrupt_lines == 0
        assert [r.fingerprint for r in reopened] == order
        for fingerprint, record in expected.items():
            assert reopened.get(fingerprint) == record
        reopened.close()
    finally:
        store.close()
