"""Executable versions of the paper's illustrative figures (E8 in DESIGN.md).

Each test reconstructs the schedule a figure depicts and asserts the
qualitative claim the paper makes with it, across the protocols involved.
Unit step time keeps every commit instant exact.
"""

import pytest

from repro.analysis.serializability import check_serializable
from repro.core.scc_2s import SCC2S
from repro.core.scc_ks import SCCkS
from repro.core.scc_vw import SCCVW
from repro.protocols.occ import BasicOCC
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.txn.spec import TransactionSpec
from tests.conftest import R, W, build_system, commit_time_of, make_class, run_scenario

# The recurring two-transaction conflict: T1 updates x early and commits
# at t=3; T2 reads a clean page, then x, then keeps going.
T1_PROGRAM = [W(0), R(1), R(2)]
T2_PROGRAM = [R(3), R(0), R(4), R(5)]


def figure1_2_programs():
    return [list(T1_PROGRAM), list(T2_PROGRAM)]


def test_figure1a_basic_occ_restarts_at_validation():
    # Basic OCC discovers the materialized conflict only when T2
    # validates (t=4), then re-runs everything: commit at 8.
    system = run_scenario(BasicOCC(), programs=figure1_2_programs())
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert commit_time_of(system, 1) == pytest.approx(8.0)
    assert system.metrics.restarts == 1


def test_figure1b_occ_bc_restarts_at_commit():
    # OCC-BC notifies T2 at T1's commit (t=3): restart runs 4 steps,
    # commit at 7 — one step earlier than basic OCC.
    system = run_scenario(OCCBroadcastCommit(), programs=figure1_2_programs())
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert commit_time_of(system, 1) == pytest.approx(7.0)
    assert system.metrics.restarts == 1


def test_figure2b_scc_adopts_shadow_instead_of_restarting():
    # SCC-2S forked a shadow blocked before the read of x (position 1):
    # adoption resumes there, commit at 6 — beating both OCC variants.
    system = run_scenario(SCC2S(), programs=figure1_2_programs())
    assert commit_time_of(system, 0) == pytest.approx(3.0)
    assert commit_time_of(system, 1) == pytest.approx(6.0)
    assert system.metrics.restarts == 0


def test_figure_1_2_protocol_ordering():
    # The paper's qualitative chain: SCC < OCC-BC < OCC for T2's finish.
    times = {}
    for name, protocol in (
        ("occ", BasicOCC()),
        ("occ-bc", OCCBroadcastCommit()),
        ("scc", SCC2S()),
    ):
        system = run_scenario(protocol, programs=figure1_2_programs())
        times[name] = commit_time_of(system, 1)
    assert times["scc"] < times["occ-bc"] < times["occ"]


def test_figure3_shadow_set_for_three_pairwise_conflicts():
    # Three pairwise-conflicting transactions: under conflict-based
    # speculation T3 keeps one optimistic plus one shadow per conflicting
    # transaction (the figure's T3', T3^1, T3^2 — three total under
    # SCC-CB vs five orders under SCC-OB, checked analytically elsewhere).
    from repro.core.scc_cb import SCCCB
    from repro.txn.generator import fixed_workload

    protocol = SCCCB()
    # T3 reads x (written by T1) and y (written by T2).
    specs = fixed_workload(
        programs=[
            [W(10), R(20), R(21), R(22)],  # T1 writes x
            [W(11), R(23), R(24), R(25)],  # T2 writes y
            [R(10), R(11), R(26), R(27)],  # T3 reads x then y
        ],
        arrivals=[0.0, 0.0, 1.0],
        txn_class=make_class(num_steps=4),
        step_duration=1.0,
    )
    system = build_system(protocol, num_pages=64)
    system.load_workload(specs)
    system.sim.run(until=3.5)
    runtime = protocol.runtime_of(2)
    assert len(runtime.speculatives) == 2
    assert runtime.optimistic.alive
    system.sim.run()
    assert check_serializable(system.history)


def test_figure6_lbfo_replacement_keeps_earliest_blocking_point():
    # Covered in detail by tests/core/test_scc_ks.py; here the end-to-end
    # claim: with k=2 the shadow budget follows the earliest conflict.
    protocol = SCCkS(k=2)
    system = run_scenario(
        protocol,
        programs=[
            [R(0), R(1), R(2), R(3), R(4)],
            [W(2), R(9), R(10), R(11), R(12)],
            [R(13), R(14), W(0), R(15), R(16)],
        ],
        arrivals=[0.5, 0.0, 0.0],
    )
    assert check_serializable(system.history)
    assert len(system.history) == 3


def test_figure10_deferment_increases_value():
    # The headline §3 example: deferring the low-value writer lets the
    # high-value reader commit on time.  SCC-VW > SCC-2S in System Value.
    def build(protocol):
        specs = [
            TransactionSpec.build(
                txn_id=0,
                arrival=0.0,
                steps=[R(8), W(0)],
                txn_class=make_class(num_steps=2, value=1.0),
                step_duration=1.0,
                deadline=3.0,
            ),
            TransactionSpec.build(
                txn_id=1,
                arrival=0.0,
                steps=[R(0), R(9), R(10), R(11)],
                txn_class=make_class(num_steps=4, value=10.0),
                step_duration=1.0,
                deadline=4.5,
            ),
        ]
        system = build_system(protocol, num_pages=64)
        system.load_workload(specs)
        system.run()
        return system

    undeferred = build(SCC2S())
    deferred = build(SCCVW(period=0.25))
    assert (
        deferred.metrics.summary().system_value
        > undeferred.metrics.summary().system_value
    )
    # And the mechanism: T2 met its deadline only under deferment.
    assert commit_time_of(deferred, 1) <= 4.5 < commit_time_of(undeferred, 1)
