"""Unit tests for the RTDBSystem wiring (Figure 12 model)."""

import pytest

from repro.errors import InvariantViolation, ProtocolError
from repro.protocols.base import CCProtocol, Execution
from repro.protocols.serial import SerialExecution
from repro.txn.generator import fixed_workload
from repro.txn.spec import TransactionSpec
from tests.conftest import R, W, build_system, make_class


def specs_for(programs, arrivals=None, deadlines=None):
    return fixed_workload(
        programs=programs,
        arrivals=arrivals or [0.0] * len(programs),
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=1.0,
        deadlines=deadlines,
    )


def test_commit_records_history_and_metrics():
    system = build_system(SerialExecution(), num_pages=8)
    system.load_workload(specs_for([[R(0), W(1)]]))
    system.run()
    assert system.committed_count == 1
    assert len(system.history) == 1
    committed = system.history.transactions[0]
    assert committed.reads == {0: 0, 1: 0}
    assert committed.writes == {1: 1}
    assert system.db.read(1) == (0, 1)  # payload = writer txn id
    assert system.metrics.summary().committed == 1


def test_duplicate_arrival_rejected():
    system = build_system(SerialExecution(), num_pages=8)
    spec = specs_for([[R(0)]])[0]
    system.load_workload([spec])
    system.sim.run()
    duplicate = specs_for([[R(0)]])[0]
    system.sim.schedule(0.0, system._arrive, duplicate)
    with pytest.raises(ProtocolError):
        system.sim.run()


def test_double_commit_rejected():
    system = build_system(SerialExecution(), num_pages=8)
    spec = specs_for([[R(0)]])[0]
    system.load_workload([spec])
    system.run()
    execution = Execution(spec)
    execution.pos = 1
    from repro.protocols.base import ExecutionState

    execution.state = ExecutionState.FINISHED
    with pytest.raises(ProtocolError):
        system.commit(execution)


def test_stale_read_commit_rejected():
    # A protocol that tries to commit a stale read must be stopped.
    class BrokenProtocol(CCProtocol):
        name = "broken"

        def on_arrival(self, txn):
            self._start(Execution(txn))

        def on_finished(self, execution):
            # Sneakily bump the page version before committing.
            self.system.db.install({0: 99}, writer=999)
            self._commit(execution)

    system = build_system(BrokenProtocol(), num_pages=8)
    system.load_workload(specs_for([[R(0)]]))
    with pytest.raises(InvariantViolation):
        system.run()


def test_drain_with_live_transactions_detected():
    # A protocol that silently drops a transaction must be caught at drain.
    class LosesTransactions(CCProtocol):
        name = "loses"

        def on_arrival(self, txn):
            pass  # never starts anything

        def on_finished(self, execution):  # pragma: no cover
            pass

    system = build_system(LosesTransactions(), num_pages=8)
    system.load_workload(specs_for([[R(0)]]))
    with pytest.raises(InvariantViolation):
        system.run()


def test_active_transaction_tracking():
    system = build_system(SerialExecution(), num_pages=8)
    system.load_workload(specs_for([[R(0), R(1)], [R(2)]]))
    system.sim.run(until=0.5)
    assert len(system.active_transactions) == 2
    assert system.is_active(0)
    system.run()
    assert not system.is_active(0)
    assert system.active_transactions == []


def test_protocol_cannot_bind_twice():
    protocol = SerialExecution()
    build_system(protocol, num_pages=8)
    with pytest.raises(ProtocolError):
        build_system(protocol, num_pages=8)


def test_history_recording_can_be_disabled():
    from repro.metrics.stats import MetricsCollector
    from repro.system.model import RTDBSystem
    from repro.system.resources import InfiniteResources

    system = RTDBSystem(
        protocol=SerialExecution(),
        num_pages=8,
        resources=InfiniteResources(cpu_time=1.0, io_time=0.0),
        metrics=MetricsCollector(),
        record_history=False,
    )
    system.load_workload(specs_for([[R(0)]]))
    system.run()
    assert system.history is None
    assert system.committed_count == 1
