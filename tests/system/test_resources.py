"""Unit tests for resource managers."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.serial import SerialExecution
from repro.protocols.occ_bc import OCCBroadcastCommit
from repro.system.resources import FiniteResources, InfiniteResources
from tests.conftest import R, W, build_system, commit_time_of, make_class
from repro.txn.generator import fixed_workload


def run_with(resources, programs, arrivals=None):
    system = build_system(
        OCCBroadcastCommit(), num_pages=64, resources=resources
    )
    specs = fixed_workload(
        programs=programs,
        arrivals=arrivals or [0.0] * len(programs),
        txn_class=make_class(num_steps=max(len(p) for p in programs)),
        step_duration=resources.step_service_time,
    )
    system.load_workload(specs)
    system.run()
    return system


def test_infinite_resources_no_queueing():
    resources = InfiniteResources(cpu_time=1.0, io_time=0.0)
    system = run_with(resources, [[R(0), R(1)], [R(2), R(3)], [R(4), R(5)]])
    for txn_id in range(3):
        assert commit_time_of(system, txn_id) == pytest.approx(2.0)


def test_finite_single_server_serializes_service():
    resources = FiniteResources(cpu_time=1.0, io_time=0.0, num_servers=1)
    system = run_with(resources, [[R(0), R(1)], [R(2), R(3)]])
    # Four page accesses through one server: last completes at t=4.
    times = sorted(
        commit_time_of(system, txn_id) for txn_id in range(2)
    )
    assert times[-1] == pytest.approx(4.0)
    assert resources.total_queued > 0


def test_finite_many_servers_behaves_like_infinite():
    finite = FiniteResources(cpu_time=1.0, io_time=0.0, num_servers=16)
    system = run_with(finite, [[R(0), R(1)], [R(2), R(3)], [R(4), R(5)]])
    for txn_id in range(3):
        assert commit_time_of(system, txn_id) == pytest.approx(2.0)
    assert finite.total_queued == 0


def test_finite_priority_queue_serves_urgent_first():
    # One server, three single-step transactions arriving together: the
    # one with the earliest deadline must be served first.
    resources = FiniteResources(cpu_time=1.0, io_time=0.0, num_servers=1)
    system = build_system(SerialExecution(), num_pages=8, resources=resources)
    specs = fixed_workload(
        programs=[[R(0)], [R(1)], [R(2)]],
        arrivals=[0.0, 0.0, 0.0],
        txn_class=make_class(num_steps=1),
        step_duration=1.0,
        deadlines=[30.0, 10.0, 20.0],
    )
    # SerialExecution runs txns one at a time already; use OCC instead for
    # genuine queue competition.
    system = build_system(OCCBroadcastCommit(), num_pages=8, resources=FiniteResources(1.0, 0.0, 1))
    system.load_workload(specs)
    system.run()
    # T0's request found the server free (service is non-preemptive), so
    # it completes first; the *queued* requests are served in EDF order:
    # T1 (deadline 10) before T2 (deadline 20).
    assert commit_time_of(system, 0) == pytest.approx(1.0)
    assert commit_time_of(system, 1) == pytest.approx(2.0)
    assert commit_time_of(system, 2) == pytest.approx(3.0)


def test_dead_waiters_are_skipped():
    # An aborted execution queued behind a busy server must not consume
    # service.  2PL aborts via priority abort while requests are queued.
    from repro.protocols.twopl_pa import TwoPhaseLockingPA

    resources = FiniteResources(cpu_time=1.0, io_time=0.0, num_servers=1)
    system = build_system(TwoPhaseLockingPA(), num_pages=8, resources=resources)
    specs = fixed_workload(
        programs=[[W(0), R(1)], [W(0), R(2)]],
        arrivals=[0.0, 0.1],
        txn_class=make_class(num_steps=2),
        step_duration=1.0,
        deadlines=[50.0, 5.0],
    )
    system.load_workload(specs)
    system.run()
    assert len(system.history.transactions) == 2


def test_utilization_accounting():
    resources = FiniteResources(cpu_time=0.5, io_time=0.5, num_servers=2)
    run_with(resources, [[R(0), R(1)], [R(2), R(3)]])
    assert resources.total_busy_time == pytest.approx(4.0)
    assert resources.busy_servers == 0  # all released at drain


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        InfiniteResources(cpu_time=0.0, io_time=0.0)
    with pytest.raises(ConfigurationError):
        InfiniteResources(cpu_time=-1.0, io_time=2.0)
    with pytest.raises(ConfigurationError):
        FiniteResources(cpu_time=1.0, io_time=0.0, num_servers=0)


def test_unbound_resource_manager_rejected():
    resources = InfiniteResources(cpu_time=1.0, io_time=0.0)
    with pytest.raises(ConfigurationError):
        resources.request(None, lambda: None)