"""Tests for the unified sweep event bus."""

import json

import pytest

from repro.experiments.parallel import (
    CellError,
    CellOutcome,
    ProgressEvent,
    SweepCell,
)
from repro.telemetry.bus import SWEEP_EVENT_KINDS, EventBus, SweepEvent


def make_cell(index=0) -> SweepCell:
    return SweepCell(
        index=index, protocol="SCC-2S", rate_index=0, arrival_rate=60.0,
        replication=0,
    )


def test_sweep_event_to_dict_flattens_payload():
    event = SweepEvent(kind="cell_started", payload={"cell": {"index": 0}})
    assert event.to_dict() == {"kind": "cell_started", "cell": {"index": 0}}


def test_subscribers_receive_events_in_order():
    bus = EventBus()
    seen_a, seen_b = [], []
    bus.subscribe(seen_a.append)
    bus.subscribe(seen_b.append)
    first = SweepEvent(kind="cell_started", payload={})
    second = SweepEvent(kind="cell_completed", payload={})
    bus.publish(first)
    bus.publish(second)
    assert seen_a == [first, second]
    assert seen_b == [first, second]


def test_progress_ticks_map_to_started_and_completed():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    cell = make_cell()
    bus.publish_progress(ProgressEvent(
        kind="started", cell=cell, completed=0, total=4, elapsed=0.0, eta=None,
    ))
    bus.publish_progress(ProgressEvent(
        kind="completed", cell=cell, completed=1, total=4, elapsed=0.5,
        eta=1.5, ok=True,
    ))
    assert [event.kind for event in seen] == ["cell_started", "cell_completed"]
    assert all(kind in SWEEP_EVENT_KINDS for kind in (e.kind for e in seen))
    payload = seen[1].payload
    assert payload["cell"]["protocol"] == "SCC-2S"
    assert payload["completed"] == 1 and payload["total"] == 4
    assert payload["eta"] == 1.5


def make_summary():
    from repro.metrics.stats import RunSummary

    return RunSummary(
        committed=108,
        missed_ratio=2.5,
        avg_tardiness_late=0.1,
        avg_tardiness_all=0.01,
        system_value=99.5,
        avg_response_time=0.2,
        restarts=3,
        shadow_aborts=5,
        wasted_work=1.5,
        useful_work=10.0,
        deferred_commits=0,
        per_class_missed={"baseline": 2.5},
        per_class_value={"baseline": 99.5},
    )


def test_outcome_events_carry_summary_and_telemetry():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    telemetry = {"schema": 1, "counters": {"commits": 108}, "gauges": {}}
    outcome = CellOutcome(
        cell=make_cell(), summary=make_summary(), error=None, elapsed=0.25,
        telemetry=telemetry,
    )
    bus.publish_outcome(outcome, cached=True)
    event = seen[0]
    assert event.kind == "cell_outcome"
    assert event.payload["ok"] is True
    assert event.payload["cached"] is True
    assert event.payload["telemetry"] == telemetry
    assert event.payload["summary"]["committed"] == 108
    json.dumps(event.to_dict())  # the whole stream must be JSON-ready


def test_failed_outcomes_carry_error_details():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    error = CellError.from_exception(ValueError("boom"))
    outcome = CellOutcome(
        cell=make_cell(), summary=None, error=error, elapsed=0.0,
    )
    bus.publish_outcome(outcome)
    payload = seen[0].payload
    assert payload["ok"] is False
    assert payload["summary"] is None
    assert payload["error"] == {"type": "ValueError", "message": "boom"}


def test_publish_lifecycle_wraps_worker_events():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.publish_lifecycle("worker_started", {"worker": "host-0"})
    bus.publish_lifecycle("worker_lost", {"worker": "host-0", "exitcode": 13})
    assert [e.kind for e in seen] == ["worker_started", "worker_lost"]
    assert seen[0].payload == {"worker": "host-0"}
    assert all(e.kind in SWEEP_EVENT_KINDS for e in seen)


def test_publish_lifecycle_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown"):
        EventBus().publish_lifecycle("worker_promoted", {})
