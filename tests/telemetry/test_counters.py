"""Tests for the counter registry and the per-run telemetry block."""

from repro.telemetry.counters import TELEMETRY_SCHEMA, CounterRegistry, run_telemetry


def test_counters_accumulate_and_default_to_zero():
    registry = CounterRegistry()
    assert registry.count("aborts") == 0
    registry.incr("aborts")
    registry.incr("aborts", 3)
    assert registry.count("aborts") == 4


def test_gauges_keep_the_high_water_mark():
    registry = CounterRegistry()
    registry.record_max("peak_live_shadows", 2)
    registry.record_max("peak_live_shadows", 7)
    registry.record_max("peak_live_shadows", 5)
    assert registry.gauge("peak_live_shadows") == 7
    assert registry.gauge("never_recorded", default=-1.0) == -1.0


def test_snapshot_is_name_sorted_and_json_ready():
    import json

    registry = CounterRegistry()
    registry.incr("zeta")
    registry.incr("alpha")
    registry.record_max("peak", 3.5)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert snap["gauges"] == {"peak": 3.5}
    json.dumps(snap)  # must serialize as-is


def test_run_telemetry_samples_a_real_run():
    from tests.conftest import R, W, make_class, run_scenario

    from repro.core.scc_2s import SCC2S

    system = run_scenario(
        SCC2S(),
        programs=[[R(1), W(2)], [R(2), W(1)], [R(3), R(4)]],
        arrivals=[0.0, 0.5, 1.0],
        txn_class=make_class(num_steps=2),
    )
    block = run_telemetry(system, wall_clock=0.25)
    assert block["schema"] == TELEMETRY_SCHEMA
    assert block["wall_clock"] == 0.25
    assert block["events_fired"] > 0
    assert block["peak_pending_events"] >= 1
    counters = block["counters"]
    assert counters["arrivals"] == 3
    assert counters["commits"] == 3
    # SCC-2S forks an optimistic shadow per arrival at minimum.
    assert counters["shadow_forks"] >= 3
    assert block["gauges"]["peak_live_shadows"] >= 1


def test_system_counters_match_metrics_accounting():
    from tests.conftest import R, W, make_class, run_scenario

    from repro.protocols.twopl_pa import TwoPhaseLockingPA

    # A conflicting pair under 2PL: the system's always-on counters and
    # the metrics collector must agree on commits.
    system = run_scenario(
        TwoPhaseLockingPA(),
        programs=[[W(1), R(2)], [R(1), W(2)]],
        arrivals=[0.0, 0.25],
        txn_class=make_class(num_steps=2),
    )
    assert system.counters.count("commits") == len(system.history)
    assert system.counters.count("arrivals") == 2
