"""Tests for the trace-event taxonomy and its JSONL serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.events import (
    EVENT_KINDS,
    TraceEvent,
    is_marker,
    iter_trace,
    read_trace,
)


def make_event(**overrides) -> TraceEvent:
    values = dict(
        time=1.5,
        kind="step_complete",
        txn=7,
        lane=2,
        mode="speculative",
        pos=3,
        data={"page": 41, "write": True},
    )
    values.update(overrides)
    return TraceEvent(**values)


def test_taxonomy_covers_generic_and_scc_lifecycle():
    for kind in (
        "txn_start", "step_complete", "block", "abort", "restart",
        "commit", "deadline_miss", "txn_finish",
        "shadow_fork", "shadow_prune", "shadow_promote", "vote",
    ):
        assert kind in EVENT_KINDS


@pytest.mark.parametrize("kind", EVENT_KINDS)
def test_every_kind_round_trips_through_dict(kind):
    event = make_event(kind=kind)
    assert TraceEvent.from_dict(event.to_dict()) == event


def test_round_trips_bit_identically_through_jsonl():
    event = make_event(time=0.1234567890123456)
    line = event.to_json_line()
    assert "\n" not in line
    rebuilt = TraceEvent.from_json_line(line)
    assert rebuilt == event
    assert rebuilt.time == event.time  # shortest-repr float survival


def test_optional_fields_default_to_none_and_empty_data():
    event = TraceEvent(time=0.0, kind="restart", txn=1)
    payload = event.to_dict()
    assert payload["lane"] is None
    assert payload["mode"] is None
    assert payload["pos"] is None
    assert payload["data"] == {}
    assert TraceEvent.from_dict(payload) == event


def test_from_dict_rejects_schema_drift():
    payload = make_event().to_dict()
    payload["surprise"] = 1
    with pytest.raises(ConfigurationError, match="surprise"):
        TraceEvent.from_dict(payload)
    short = make_event().to_dict()
    del short["txn"]
    with pytest.raises(ConfigurationError, match="txn"):
        TraceEvent.from_dict(short)


def test_from_dict_rejects_unknown_kind_and_bad_data():
    payload = make_event().to_dict()
    payload["kind"] = "teleport"
    with pytest.raises(ConfigurationError, match="teleport"):
        TraceEvent.from_dict(payload)
    bad_data = make_event().to_dict()
    bad_data["data"] = "not a dict"
    with pytest.raises(ConfigurationError, match="data"):
        TraceEvent.from_dict(bad_data)
    with pytest.raises(ConfigurationError, match="dict"):
        TraceEvent.from_dict(["not", "a", "dict"])


def test_from_json_line_rejects_corrupt_lines():
    with pytest.raises(ConfigurationError, match="corrupt"):
        TraceEvent.from_json_line("{not json")


def test_is_marker_distinguishes_cell_boundaries():
    assert is_marker({"marker": "cell_start", "index": 0})
    assert not is_marker(make_event().to_dict())


def test_read_trace_skips_markers_and_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = [make_event(txn=i) for i in range(3)]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"marker": "cell_start", "index": 0}) + "\n")
        handle.write(events[0].to_json_line() + "\n\n")
        handle.write(events[1].to_json_line() + "\n")
        handle.write(json.dumps({"marker": "cell_start", "index": 1}) + "\n")
        handle.write(events[2].to_json_line() + "\n")
    assert list(read_trace(path)) == events
    lines = list(iter_trace(path))
    assert len(lines) == 5  # markers included
    assert sum(1 for line in lines if is_marker(line)) == 2


def test_iter_trace_rejects_missing_file_and_corrupt_lines(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot read"):
        list(iter_trace(tmp_path / "absent.jsonl"))
    path = tmp_path / "bad.jsonl"
    path.write_text('{"marker": "x"}\n{oops\n', encoding="utf-8")
    with pytest.raises(ConfigurationError, match="line 2"):
        list(iter_trace(path))
