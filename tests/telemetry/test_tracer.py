"""Tests for the trace sinks and lane normalization."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.events import TraceEvent, read_trace
from repro.telemetry.tracer import JsonlTracer, MemoryTracer, NullTracer


def test_lanes_renumber_serials_in_first_seen_order():
    tracer = MemoryTracer()
    # Process-global serials (large, non-contiguous) become 0-based lanes.
    tracer.emit("shadow_fork", 0.0, txn=1, serial=9001)
    tracer.emit("shadow_fork", 0.1, txn=2, serial=9007)
    tracer.emit("block", 0.2, txn=1, serial=9001)
    assert [event.lane for event in tracer.events] == [0, 1, 0]


def test_events_without_serial_have_no_lane():
    tracer = MemoryTracer()
    tracer.emit("restart", 1.0, txn=3)
    assert tracer.events[0].lane is None


def test_reset_lanes_restarts_numbering():
    tracer = MemoryTracer()
    tracer.emit("shadow_fork", 0.0, txn=1, serial=500)
    tracer.reset_lanes()
    tracer.emit("shadow_fork", 0.0, txn=1, serial=501)
    assert [event.lane for event in tracer.events] == [0, 0]


def test_memory_tracer_dicts_match_event_dicts():
    tracer = MemoryTracer()
    tracer.emit(
        "step_complete", 2.0, txn=4, serial=10, mode="optimistic", pos=1,
        data={"page": 3, "write": False},
    )
    assert tracer.dicts() == [tracer.events[0].to_dict()]


def test_null_tracer_discards_everything():
    tracer = NullTracer()
    tracer.emit("commit", 1.0, txn=1, serial=1)
    tracer.close()  # no-op, must not raise


def test_jsonl_tracer_owns_path_and_writes_canonical_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlTracer(path) as tracer:
        tracer.emit("txn_start", 0.5, txn=9, data={"steps": 16})
        tracer.write_marker({"marker": "cell_start", "index": 0})
        tracer.emit("commit", 1.5, txn=9)
    events = list(read_trace(path))
    assert [event.kind for event in events] == ["txn_start", "commit"]
    assert events[0].data == {"steps": 16}
    # Every line is strict JSON; the marker carries its key.
    lines = path.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[1]) == {"marker": "cell_start", "index": 0}


def test_jsonl_tracer_borrows_open_handles(tmp_path):
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    tracer.emit("abort", 3.0, txn=2, serial=77, data={"work": 4.0})
    tracer.close()
    assert not buffer.closed  # borrowed handles are flushed, not closed
    event = TraceEvent.from_json_line(buffer.getvalue().strip())
    assert event.kind == "abort"
    assert event.lane == 0


def test_jsonl_tracer_rejects_unwritable_path(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot open"):
        JsonlTracer(tmp_path / "missing-dir" / "trace.jsonl")


def test_marker_payloads_must_carry_the_marker_key(tmp_path):
    tracer = JsonlTracer(io.StringIO())
    with pytest.raises(ConfigurationError, match="marker"):
        tracer.write_marker({"index": 0})


def test_close_is_idempotent(tmp_path):
    tracer = JsonlTracer(tmp_path / "trace.jsonl")
    tracer.close()
    tracer.close()


def test_jsonl_fast_path_matches_the_canonical_encoder():
    """The hand-assembled JSONL line must be byte-identical to the
    ``TraceEvent.to_json_line()`` form for every payload shape — including
    the ones that force the fast path's fallback to the real encoder."""
    cases = [
        dict(kind="txn_start", time=0.0, txn=1),
        dict(kind="step_complete", time=1.25, txn=2, serial=7,
             mode="optimistic", pos=3, data={"page": 3, "write": False}),
        dict(kind="deadline_miss", time=1e-05, txn=0, data={"tardiness": 0.5}),
        dict(kind="shadow_fork", time=12.75, txn=9, serial=8,
             mode="speculative",
             data={"origin": "restart", "note": 'needs "escaping" é'}),
        dict(kind="vote", time=3.0, txn=4, serial=7, data={"decision": None}),
        dict(kind="vote", time=3.5, txn=4, data={"nested": {"a": 1}}),
        dict(kind="vote", time=4.0, txn=4, data={"inf": float("inf")}),
        dict(kind="vote", time=4.5, txn=4,
             data={"big": -12, "ratio": 0.125, "safe": "a/b=c d"}),
    ]
    buffer = io.StringIO()
    fast = JsonlTracer(buffer)
    slow = MemoryTracer()
    for case in cases:
        fast.emit(**case)
        slow.emit(**case)
    fast.close()
    fast_lines = buffer.getvalue().splitlines()
    slow_lines = [event.to_json_line() for event in slow.events]
    assert fast_lines == slow_lines
