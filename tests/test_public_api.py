"""The public API surface: everything advertised imports and is documented."""

import importlib
import inspect

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.analysis",
        "repro.core",
        "repro.db",
        "repro.engine",
        "repro.errors",
        "repro.experiments",
        "repro.experiments.spec",
        "repro.gateway",
        "repro.gateway.client",
        "repro.metrics",
        "repro.protocols",
        "repro.protocols.registry",
        "repro.results",
        "repro.system",
        "repro.telemetry",
        "repro.telemetry.events",
        "repro.telemetry.tracer",
        "repro.txn",
        "repro.values",
        "repro.workloads",
        "repro.workloads.scenarios",
    ],
)
def test_subpackages_import_and_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, module_name


def test_public_classes_have_docstrings():
    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert missing == []


def test_protocol_names_are_distinct():
    protocols = [
        repro.BasicOCC(),
        repro.OCCBroadcastCommit(),
        repro.SerialExecution(),
        repro.TwoPhaseLockingPA(),
        repro.Wait50(),
        repro.SCC2S(),
        repro.SCCCB(),
        repro.SCCVW(),
        repro.SCCDC(),
        repro.SCCkS(k=4),
    ]
    names = [p.name for p in protocols]
    assert len(set(names)) == len(names)


def test_quickstart_docstring_example_runs():
    # The module docstring promises a working quickstart; hold it to that
    # (scale knobs reduced so the whole suite stays fast).
    from repro import Experiment

    results = (
        Experiment.scenario("paper-baseline")
        .protocols("scc-2s", "occ-bc")
        .rates(50, 100)
        .transactions(120)
        .warmup(12)
        .replications(1)
        .run()
    )
    assert set(results) == {"SCC-2S", "OCC-BC"}
    assert len(results["SCC-2S"].missed_ratio()) == 2


def test_low_level_building_blocks_still_run():
    # The pre-spec surface stays public for custom harnesses.
    from repro import (
        RTDBSystem,
        RandomStreams,
        SCC2S,
        TransactionClass,
        WorkloadGenerator,
    )

    streams = RandomStreams(seed=42)
    generator = WorkloadGenerator(
        classes=[
            TransactionClass(
                "base", num_steps=16, write_probability=0.25, slack_factor=2.0
            )
        ],
        num_pages=1000,
        arrival_rate=50.0,
        step_duration=0.006,
        streams=streams,
    )
    system = RTDBSystem(protocol=SCC2S(), num_pages=1000)
    system.load_workload(generator.generate(100))
    system.run()
    summary = system.metrics.summary()
    assert summary.committed == 100


def test_registry_protocol_names_match_instances():
    # Every registered family is constructible by name and the default
    # spec label matches a real protocol instance.
    from repro import ProtocolSpec, available_protocols
    from repro.protocols.base import CCProtocol

    assert {
        "scc-2s", "scc-ks", "scc-cb", "scc-dc", "scc-vw",
        "2pl-pa", "occ", "occ-bc", "wait-50", "serial",
    } <= set(available_protocols())
    for family in available_protocols():
        spec = ProtocolSpec.create(family)
        protocol = spec.build()
        assert isinstance(protocol, CCProtocol)
