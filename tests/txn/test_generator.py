"""Unit tests for the workload generator (paper §4 baseline model)."""

import numpy as np
import pytest

from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.txn.generator import WorkloadGenerator, fixed_workload
from tests.conftest import R, W, make_class


def make_generator(rate=50.0, classes=None, seed=7, num_pages=1000):
    return WorkloadGenerator(
        classes=classes or [make_class(num_steps=16)],
        num_pages=num_pages,
        arrival_rate=rate,
        step_duration=0.006,
        streams=RandomStreams(seed),
    )


def test_arrivals_are_increasing_and_ids_sequential():
    generator = make_generator()
    specs = list(generator.generate(50))
    arrivals = [s.arrival for s in specs]
    assert arrivals == sorted(arrivals)
    assert [s.txn_id for s in specs] == list(range(50))


def test_arrival_rate_roughly_matches():
    generator = make_generator(rate=100.0)
    specs = list(generator.generate(4000))
    duration = specs[-1].arrival - specs[0].arrival
    empirical_rate = (len(specs) - 1) / duration
    assert empirical_rate == pytest.approx(100.0, rel=0.1)


def test_pages_distinct_within_transaction():
    generator = make_generator()
    for spec in generator.generate(100):
        pages = [step.page for step in spec.steps]
        assert len(set(pages)) == len(pages)
        assert all(0 <= p < 1000 for p in pages)


def test_write_probability_respected():
    generator = make_generator()
    specs = list(generator.generate(2000))
    writes = sum(sum(1 for st in s.steps if st.is_write) for s in specs)
    total = sum(len(s.steps) for s in specs)
    assert writes / total == pytest.approx(0.25, abs=0.02)


def test_deadline_uses_slack_factor():
    generator = make_generator()
    spec = generator.next_transaction()
    expected = spec.arrival + 2.0 * 16 * 0.006
    assert spec.deadline == pytest.approx(expected)


def test_same_seed_reproduces_workload():
    a = [
        (s.arrival, tuple(s.steps)) for s in make_generator(seed=3).generate(20)
    ]
    b = [
        (s.arrival, tuple(s.steps)) for s in make_generator(seed=3).generate(20)
    ]
    assert a == b


def test_class_mix_weights():
    short = make_class(name="short", num_steps=4, weight=0.9)
    long = make_class(name="long", num_steps=32, weight=0.1)
    generator = make_generator(classes=[short, long])
    specs = list(generator.generate(3000))
    long_fraction = np.mean([s.txn_class.name == "long" for s in specs])
    assert long_fraction == pytest.approx(0.1, abs=0.02)


def test_class_mix_does_not_perturb_arrivals():
    one = make_generator(seed=5)
    two = make_generator(
        seed=5,
        classes=[make_class(name="a", weight=0.5), make_class(name="b", weight=0.5)],
    )
    a = [s.arrival for s in one.generate(50)]
    b = [s.arrival for s in two.generate(50)]
    assert a == pytest.approx(b)


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        make_generator(rate=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadGenerator(
            classes=[],
            num_pages=10,
            arrival_rate=1.0,
            step_duration=0.01,
            streams=RandomStreams(1),
        )
    with pytest.raises(ConfigurationError):
        # class accesses more pages than the database holds
        WorkloadGenerator(
            classes=[make_class(num_steps=20)],
            num_pages=10,
            arrival_rate=1.0,
            step_duration=0.01,
            streams=RandomStreams(1),
        )


class TestFixedWorkload:
    def test_builds_specs_in_order(self):
        specs = fixed_workload(
            programs=[[R(0), W(1)], [R(1)]],
            arrivals=[0.0, 0.5],
            txn_class=make_class(num_steps=2),
            step_duration=1.0,
        )
        assert [s.txn_id for s in specs] == [0, 1]
        assert specs[1].arrival == 0.5
        assert specs[0].write_pages == {1}

    def test_explicit_deadlines(self):
        specs = fixed_workload(
            programs=[[R(0)], [R(1)]],
            arrivals=[0.0, 0.0],
            txn_class=make_class(num_steps=1),
            step_duration=1.0,
            deadlines=[5.0, None],
        )
        assert specs[0].deadline == 5.0
        assert specs[1].deadline == pytest.approx(2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_workload(
                programs=[[R(0)]],
                arrivals=[0.0, 1.0],
                txn_class=make_class(num_steps=1),
                step_duration=1.0,
            )
