"""Unit tests for priority policies."""

from repro.txn.priority import (
    ArrivalOrderPolicy,
    EarliestDeadlineFirst,
    HighestValueFirst,
    ValueDensityPolicy,
)
from repro.txn.spec import TransactionSpec
from tests.conftest import R, make_class


def spec(txn_id, arrival=0.0, deadline=10.0, value=1.0, steps=1):
    cls = make_class(num_steps=steps, value=value)
    return TransactionSpec.build(
        txn_id=txn_id,
        arrival=arrival,
        steps=[R(i) for i in range(steps)],
        txn_class=cls,
        step_duration=1.0,
        deadline=deadline,
    )


def test_edf_orders_by_deadline():
    policy = EarliestDeadlineFirst()
    urgent = spec(1, deadline=5.0)
    relaxed = spec(2, deadline=9.0)
    assert policy.higher_priority(urgent, relaxed, now=0.0)
    assert not policy.higher_priority(relaxed, urgent, now=0.0)


def test_edf_tie_broken_by_id():
    policy = EarliestDeadlineFirst()
    a = spec(1, deadline=5.0)
    b = spec(2, deadline=5.0)
    assert policy.higher_priority(a, b, now=0.0)


def test_edf_demotes_tardy():
    policy = EarliestDeadlineFirst(demote_tardy=True)
    tardy = spec(1, deadline=5.0)
    feasible = spec(2, deadline=9.0)
    assert policy.higher_priority(tardy, feasible, now=0.0)
    assert policy.higher_priority(feasible, tardy, now=6.0)


def test_edf_static_variant_keeps_order():
    policy = EarliestDeadlineFirst(demote_tardy=False)
    tardy = spec(1, deadline=5.0)
    feasible = spec(2, deadline=9.0)
    assert policy.higher_priority(tardy, feasible, now=6.0)


def test_fcfs_orders_by_arrival():
    policy = ArrivalOrderPolicy()
    early = spec(2, arrival=0.0, deadline=100.0)
    late = spec(1, arrival=1.0, deadline=2.0)
    assert policy.higher_priority(early, late, now=0.0)


def test_highest_value_first():
    policy = HighestValueFirst()
    cheap = spec(1, value=1.0)
    precious = spec(2, value=10.0)
    assert policy.higher_priority(precious, cheap, now=0.0)


def test_value_decay_flips_value_priority():
    policy = HighestValueFirst()
    # High value but 45-degree decay after t=5 vs steady low value.
    decaying = spec(1, value=10.0, deadline=5.0)
    steady = spec(2, value=8.0, deadline=100.0)
    assert policy.higher_priority(decaying, steady, now=0.0)
    assert policy.higher_priority(steady, decaying, now=8.0)


def test_value_density_prefers_short_high_value():
    policy = ValueDensityPolicy()
    dense = spec(1, value=5.0, steps=1)
    sparse = spec(2, value=5.0, steps=10)
    assert policy.higher_priority(dense, sparse, now=0.0)
