"""Unit tests for transaction specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.txn.spec import Step, TransactionSpec
from tests.conftest import R, W, make_class


def build(steps, arrival=0.0, deadline=None, step_duration=1.0, txn_id=0):
    return TransactionSpec.build(
        txn_id=txn_id,
        arrival=arrival,
        steps=steps,
        txn_class=make_class(num_steps=len(steps)),
        step_duration=step_duration,
        deadline=deadline,
    )


def test_deadline_from_slack_factor():
    spec = build([R(0), R(1), W(2)], arrival=10.0)
    # slack factor 2, 3 steps of 1s each -> deadline = 10 + 2*3.
    assert spec.deadline == pytest.approx(16.0)
    assert spec.estimated_duration == pytest.approx(3.0)


def test_explicit_deadline_wins():
    spec = build([R(0)], deadline=99.0)
    assert spec.deadline == 99.0
    assert spec.value_function.deadline == 99.0


def test_read_and_write_pages():
    spec = build([R(0), W(1), R(2), W(3)])
    assert spec.read_pages == {0, 1, 2, 3}
    assert spec.write_pages == {1, 3}


def test_first_read_position():
    spec = build([R(5), W(7), R(9)])
    assert spec.first_read_position(5) == 0
    assert spec.first_read_position(7) == 1
    assert spec.first_read_position(9) == 2
    assert spec.first_read_position(11) is None


def test_identity_is_by_txn_id():
    a = build([R(0)], txn_id=3)
    b = build([R(1), W(2)], txn_id=3)
    assert a == b
    assert hash(a) == hash(b)
    assert a != object()


def test_iteration_and_length():
    steps = [R(0), W(1)]
    spec = build(steps)
    assert len(spec) == 2
    assert list(spec) == steps


def test_slack():
    spec = build([R(0)], arrival=1.0, deadline=4.0)
    assert spec.slack() == pytest.approx(3.0)


def test_step_repr():
    assert repr(Step(3, True)) == "W(3)"
    assert repr(Step(3, False)) == "R(3)"


def test_empty_steps_rejected():
    with pytest.raises(ConfigurationError):
        build([])


def test_deadline_before_arrival_rejected():
    with pytest.raises(ConfigurationError):
        build([R(0)], arrival=5.0, deadline=4.0)
