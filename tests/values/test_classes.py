"""Unit tests for transaction classes."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.values.classes import TransactionClass
from repro.values.distributions import DeterministicExecution


def make(**kwargs):
    defaults = dict(
        name="c", num_steps=16, write_probability=0.25, slack_factor=2.0
    )
    defaults.update(kwargs)
    return TransactionClass(**defaults)


def test_penalty_gradient_from_angle():
    assert make(alpha_degrees=45.0).penalty_gradient == pytest.approx(1.0)
    assert make(alpha_degrees=0.0).penalty_gradient == 0.0
    assert math.isinf(make(alpha_degrees=90.0).penalty_gradient)


def test_with_execution_preserves_fields():
    base = make(value=5.0, weight=0.3)
    dist = DeterministicExecution(1.0)
    updated = base.with_execution(dist)
    assert updated.execution is dist
    assert updated.value == 5.0
    assert updated.weight == 0.3
    assert base.execution is None


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_steps", 0),
        ("write_probability", 1.5),
        ("write_probability", -0.1),
        ("slack_factor", 0.5),
        ("value", -1.0),
        ("alpha_degrees", 95.0),
        ("weight", 0.0),
    ],
)
def test_invalid_parameters_rejected(field, value):
    with pytest.raises(ConfigurationError):
        make(**{field: value})
