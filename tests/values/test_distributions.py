"""Unit tests for execution-time distributions (paper Definitions 3-4)."""

import pytest

from repro.errors import ConfigurationError
from repro.values.distributions import (
    DeterministicExecution,
    EmpiricalExecution,
    ExponentialExecution,
    NormalExecution,
    UniformExecution,
)


class TestDeterministic:
    def test_survival_step(self):
        dist = DeterministicExecution(2.0)
        assert dist.survival(1.9) == 1.0
        assert dist.survival(2.0) == 0.0
        assert dist.mean() == 2.0

    def test_conditional_finish(self):
        dist = DeterministicExecution(2.0)
        # Already ran 1s; finishes by total time 2.0 with certainty.
        assert dist.conditional_finish_by(2.0, elapsed=1.0) == 1.0
        assert dist.conditional_finish_by(1.5, elapsed=1.0) == 0.0

    def test_conditional_after_support_exhausted(self):
        dist = DeterministicExecution(2.0)
        # Survived past the deterministic duration: treated as immediate.
        assert dist.conditional_finish_by(3.0, elapsed=2.5) == 1.0

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            DeterministicExecution(0.0)


class TestUniform:
    def test_survival_shape(self):
        dist = UniformExecution(1.0, 3.0)
        assert dist.survival(0.5) == 1.0
        assert dist.survival(2.0) == pytest.approx(0.5)
        assert dist.survival(3.0) == 0.0
        assert dist.mean() == pytest.approx(2.0)

    def test_conditional_is_renormalized(self):
        dist = UniformExecution(1.0, 3.0)
        # Given survival past 2.0, finishing by 2.5 has probability 0.5.
        assert dist.conditional_finish_by(2.5, elapsed=2.0) == pytest.approx(0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformExecution(3.0, 1.0)


class TestExponential:
    def test_memoryless(self):
        dist = ExponentialExecution(mean=2.0)
        fresh = dist.conditional_finish_by(1.0, elapsed=0.0)
        conditioned = dist.conditional_finish_by(4.0, elapsed=3.0)
        assert fresh == pytest.approx(conditioned)

    def test_mean(self):
        assert ExponentialExecution(2.0).mean() == 2.0

    def test_survival_decreasing(self):
        dist = ExponentialExecution(1.0)
        values = [dist.survival(x) for x in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)


class TestNormal:
    def test_truncation_keeps_mass_positive(self):
        dist = NormalExecution(mu=1.0, sigma=2.0)
        assert dist.survival(0.0) == pytest.approx(1.0)
        assert 0.0 < dist.survival(1.0) < 1.0
        assert dist.mean() > 1.0  # truncation at 0 shifts the mean up

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            NormalExecution(mu=0.0, sigma=1.0)


class TestEmpirical:
    def test_survival_from_samples(self):
        dist = EmpiricalExecution([1.0, 2.0, 3.0, 4.0])
        assert dist.survival(0.5) == 1.0
        assert dist.survival(2.0) == pytest.approx(0.5)
        assert dist.survival(4.0) == 0.0
        assert dist.mean() == pytest.approx(2.5)

    def test_observe_updates(self):
        dist = EmpiricalExecution([1.0])
        dist.observe(3.0)
        assert dist.mean() == pytest.approx(2.0)
        assert dist.survival(2.0) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalExecution([])

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalExecution([1.0]).observe(0.0)


class TestHorizon:
    def test_horizon_reaches_target_probability(self):
        dist = ExponentialExecution(mean=1.0)
        horizon = dist.horizon(elapsed=0.0, epsilon=0.01)
        assert dist.conditional_finish_by(horizon, 0.0) >= 0.99

    def test_horizon_at_least_elapsed(self):
        dist = DeterministicExecution(2.0)
        assert dist.horizon(elapsed=1.0) >= 1.0

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialExecution(1.0).horizon(0.0, epsilon=0.0)
