"""Unit tests for value functions (paper Definitions 1-2)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.values.value_function import ValueFunction


def test_full_value_up_to_deadline():
    vf = ValueFunction(value=10.0, deadline=5.0, penalty_gradient=2.0)
    assert vf(0.0) == 10.0
    assert vf(5.0) == 10.0


def test_linear_decay_past_deadline():
    vf = ValueFunction(value=10.0, deadline=5.0, penalty_gradient=2.0)
    assert vf(6.0) == pytest.approx(8.0)
    assert vf(10.0) == pytest.approx(0.0)
    assert vf(11.0) == pytest.approx(-2.0)


def test_zero_gradient_never_decays():
    vf = ValueFunction(value=3.0, deadline=1.0, penalty_gradient=0.0)
    assert vf(100.0) == 3.0
    assert vf.breakeven_time() == math.inf


def test_infinite_gradient_is_fully_critical():
    vf = ValueFunction(value=3.0, deadline=1.0, penalty_gradient=math.inf)
    assert vf(1.0) == 3.0
    assert vf(1.0001) == -math.inf
    assert vf.breakeven_time() == 1.0


def test_from_angle_45_degrees_gradient_one():
    vf = ValueFunction.from_angle(value=1.0, deadline=2.0, alpha_degrees=45.0)
    assert vf.penalty_gradient == pytest.approx(1.0)
    assert vf(3.0) == pytest.approx(0.0)


def test_from_angle_90_degrees_infinite():
    vf = ValueFunction.from_angle(value=1.0, deadline=2.0, alpha_degrees=90.0)
    assert math.isinf(vf.penalty_gradient)


def test_from_angle_zero_degrees_flat():
    vf = ValueFunction.from_angle(value=1.0, deadline=2.0, alpha_degrees=0.0)
    assert vf.penalty_gradient == 0.0


def test_from_angle_out_of_range_rejected():
    with pytest.raises(ConfigurationError):
        ValueFunction.from_angle(1.0, 2.0, alpha_degrees=91.0)
    with pytest.raises(ConfigurationError):
        ValueFunction.from_angle(1.0, 2.0, alpha_degrees=-1.0)


def test_tardiness_and_lateness():
    vf = ValueFunction(value=1.0, deadline=5.0, penalty_gradient=1.0)
    assert vf.tardiness(4.0) == 0.0
    assert vf.tardiness(5.0) == 0.0
    assert vf.tardiness(7.5) == 2.5
    assert not vf.is_late(5.0)
    assert vf.is_late(5.1)


def test_breakeven_time_linear():
    vf = ValueFunction(value=10.0, deadline=5.0, penalty_gradient=2.0)
    assert vf.breakeven_time() == pytest.approx(10.0)
    assert vf(vf.breakeven_time()) == pytest.approx(0.0)


def test_evaluation_before_arrival_rejected():
    vf = ValueFunction(value=1.0, deadline=5.0, penalty_gradient=1.0, arrival=2.0)
    with pytest.raises(ConfigurationError):
        vf(1.0)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        ValueFunction(value=-1.0, deadline=5.0, penalty_gradient=1.0)
    with pytest.raises(ConfigurationError):
        ValueFunction(value=1.0, deadline=5.0, penalty_gradient=-1.0)
    with pytest.raises(ConfigurationError):
        ValueFunction(value=1.0, deadline=1.0, penalty_gradient=1.0, arrival=2.0)
