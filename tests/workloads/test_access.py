"""Access patterns: skew histograms vs closed form, distinctness, regions."""

import numpy as np
import pytest

from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.workloads.access import (
    HotspotAccess,
    PartitionedAccess,
    UniformAccess,
    ZipfianAccess,
    access_pattern_from_dict,
)

NUM_PAGES = 200


def page_histogram(pattern, draws=30_000, count=1, num_pages=NUM_PAGES, seed=13):
    """Empirical selection frequencies from single-page draws.

    ``count=1`` avoids the without-replacement distortion so frequencies
    are directly comparable to the closed-form probabilities.
    """
    rng = RandomStreams(seed)["pages"]
    counts = np.zeros(num_pages)
    for _ in range(draws):
        for page in pattern.select_pages(rng, num_pages, count):
            counts[page] += 1
    return counts / counts.sum()


def sample(pattern, num_steps=16, write_probability=0.25, seed=13, txns=200):
    streams = RandomStreams(seed)
    return [
        pattern.sample_steps(
            streams["pages"], streams["writes"], NUM_PAGES, num_steps,
            write_probability,
        )
        for _ in range(txns)
    ]


@pytest.mark.parametrize(
    "pattern",
    [
        UniformAccess(),
        ZipfianAccess(theta=0.9),
        HotspotAccess(hot_page_fraction=0.1, hot_access_fraction=0.8),
        PartitionedAccess(write_region_fraction=0.25),
    ],
)
class TestEveryPattern:
    def test_pages_distinct_and_in_range(self, pattern):
        for steps in sample(pattern):
            pages = [step.page for step in steps]
            assert len(set(pages)) == len(pages)
            assert all(0 <= p < NUM_PAGES for p in pages)

    def test_write_probability_respected(self, pattern):
        programs = sample(pattern, txns=500)
        writes = sum(sum(1 for s in steps if s.is_write) for steps in programs)
        total = sum(len(steps) for steps in programs)
        assert writes / total == pytest.approx(0.25, abs=0.03)

    def test_dict_round_trip(self, pattern):
        assert access_pattern_from_dict(pattern.to_dict()) == pattern

    def test_rejects_oversized_transactions(self, pattern):
        with pytest.raises(ConfigurationError):
            pattern.validate(num_pages=NUM_PAGES, num_steps=NUM_PAGES + 1)


class TestUniform:
    def test_frequencies_are_flat(self):
        freqs = page_histogram(UniformAccess(), count=4)
        assert freqs.max() / freqs.min() < 2.0
        assert freqs.mean() == pytest.approx(1.0 / NUM_PAGES)


class TestZipfian:
    def test_frequencies_match_closed_form(self):
        pattern = ZipfianAccess(theta=0.9)
        expected = pattern.probabilities(NUM_PAGES)
        freqs = page_histogram(pattern, draws=60_000)
        # Head pages carry enough mass for tight per-page comparison.
        for page in range(5):
            assert freqs[page] == pytest.approx(expected[page], rel=0.1)
        # Aggregate head/tail split matches closed form too.
        head = expected[:20].sum()
        assert freqs[:20].sum() == pytest.approx(head, rel=0.05)

    def test_theta_zero_degenerates_to_uniform(self):
        probs = ZipfianAccess(theta=0.0).probabilities(NUM_PAGES)
        assert np.allclose(probs, 1.0 / NUM_PAGES)

    def test_higher_theta_is_more_skewed(self):
        mild = ZipfianAccess(theta=0.5).probabilities(NUM_PAGES)
        steep = ZipfianAccess(theta=1.2).probabilities(NUM_PAGES)
        assert steep[0] > mild[0]

    def test_negative_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianAccess(theta=-0.1)


class TestHotspot:
    def test_hot_set_traffic_share_matches_closed_form(self):
        pattern = HotspotAccess(hot_page_fraction=0.1, hot_access_fraction=0.8)
        hot = pattern.hot_pages(NUM_PAGES)
        assert hot == 20
        freqs = page_histogram(pattern, draws=40_000)
        assert freqs[:hot].sum() == pytest.approx(0.8, abs=0.02)
        # Within each region the distribution is flat.
        assert freqs[:hot].max() / freqs[:hot].min() < 1.5

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotAccess(hot_page_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotspotAccess(hot_access_fraction=1.0)


class TestPartitioned:
    def test_writes_and_reads_land_in_their_regions(self):
        pattern = PartitionedAccess(write_region_fraction=0.25)
        split = pattern.split(NUM_PAGES)
        for steps in sample(pattern, write_probability=0.5):
            for step in steps:
                if step.is_write:
                    assert step.page < split
                else:
                    assert step.page >= split

    def test_region_capacity_validated(self):
        pattern = PartitionedAccess(write_region_fraction=0.1)
        with pytest.raises(ConfigurationError, match="regions"):
            # 10% of 100 pages = 10-page write region < 16 steps.
            pattern.validate(num_pages=100, num_steps=16)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionedAccess(write_region_fraction=0.0)


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown access kind"):
        access_pattern_from_dict({"kind": "quantum"})
