"""Arrival processes: empirical rates, burst structure, trace replay."""

import numpy as np
import pytest

from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    DiurnalArrivals,
    DiurnalSpec,
    MMPPArrivals,
    MMPPSpec,
    PoissonArrivals,
    PoissonSpec,
    TraceArrivals,
    TraceSpec,
    arrival_spec_from_dict,
)


def draw(process, count, seed=11):
    rng = RandomStreams(seed)["arrivals"]
    return [process.next_arrival(rng) for _ in range(count)]


def empirical_rate(times):
    return (len(times) - 1) / (times[-1] - times[0])


class TestPoisson:
    def test_monotone_increasing(self):
        times = draw(PoissonArrivals(50.0), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_empirical_rate(self):
        times = draw(PoissonArrivals(100.0), 20_000)
        assert empirical_rate(times) == pytest.approx(100.0, rel=0.05)

    def test_interarrival_cv_is_one(self):
        # Exponential inter-arrivals: coefficient of variation = 1.
        times = np.array(draw(PoissonArrivals(80.0), 20_000))
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)


class TestMMPP:
    def test_empirical_rate_matches_target(self):
        # Short cycles so the draw spans many on/off alternations.
        process = MMPPArrivals(
            100.0, burst_factor=8.0, on_fraction=0.25, mean_cycle=1.0
        )
        times = draw(process, 40_000)
        assert empirical_rate(times) == pytest.approx(100.0, rel=0.1)

    def test_burstier_than_poisson(self):
        # Rate modulation inflates inter-arrival variance: CV > 1.
        process = MMPPArrivals(
            100.0, burst_factor=10.0, on_fraction=0.2, mean_cycle=2.0
        )
        times = np.array(draw(process, 40_000))
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() > 1.2

    def test_monotone_increasing(self):
        times = draw(MMPPArrivals(50.0), 2_000)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(10.0, burst_factor=1.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(10.0, on_fraction=1.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(10.0, mean_cycle=0.0)


class TestDiurnal:
    def test_empirical_rate_matches_mean(self):
        # Short period so the draw covers many full cycles; over whole
        # cycles the sinusoid integrates out and the mean rate holds.
        process = DiurnalArrivals(100.0, amplitude=0.7, period=2.0)
        times = draw(process, 40_000)
        assert empirical_rate(times) == pytest.approx(100.0, rel=0.1)

    def test_peak_vs_trough_intensity(self):
        # Count arrivals landing in the peak half vs the trough half of
        # each cycle; with amplitude 0.7 the peak half carries
        # (1 + 2*0.7/pi) / 2 ≈ 72% of the traffic.
        period = 2.0
        process = DiurnalArrivals(100.0, amplitude=0.7, period=period)
        times = np.array(draw(process, 40_000))
        phase = (times % period) / period
        peak_fraction = np.mean(phase < 0.5)  # sin > 0 half-cycle
        assert peak_fraction == pytest.approx(0.5 + 0.7 / np.pi, abs=0.03)

    def test_amplitude_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(10.0, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(10.0, amplitude=-0.1)


class TestTrace:
    def test_replays_timestamps_verbatim(self):
        trace = TraceArrivals([0.5, 1.0, 2.5], cycle=False)
        assert draw(trace, 3) == [0.5, 1.0, 2.5]

    def test_consumes_no_randomness(self):
        rng = RandomStreams(3)["arrivals"]
        before = rng.bit_generator.state
        TraceArrivals([1.0, 2.0]).next_arrival(rng)
        assert rng.bit_generator.state == before

    def test_cycle_wraps_and_stays_increasing(self):
        trace = TraceArrivals([1.0, 2.0, 3.0, 4.0], cycle=True)
        times = draw(trace, 10)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_exhaustion_raises_without_cycle(self):
        trace = TraceArrivals([1.0, 2.0], cycle=False)
        draw(trace, 2)
        with pytest.raises(ConfigurationError):
            draw(trace, 1)

    def test_cycled_empirical_rate_matches_trace_rate(self):
        trace = TraceArrivals([float(i + 1) for i in range(100)], cycle=True)
        times = draw(trace, 5_000)
        assert empirical_rate(times) == pytest.approx(trace.rate, rel=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([1.0])
        with pytest.raises(ConfigurationError):
            TraceArrivals([2.0, 1.0])
        with pytest.raises(ConfigurationError):
            TraceArrivals([-1.0, 1.0])

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# recorded arrivals\n0.5\n1.5\n\n2.5  # spike\n")
        trace = TraceArrivals.from_file(str(path), cycle=False)
        assert draw(trace, 3) == [0.5, 1.5, 2.5]

    def test_rate_is_origin_independent(self):
        # An epoch-stamped recording (10 arrivals over ~9 s, starting at
        # t=50,000) must report its burst rate, not arrivals/epoch.
        zero_based = TraceArrivals([float(i) for i in range(10)])
        shifted = TraceArrivals([50_000.0 + i for i in range(10)])
        assert shifted.rate == pytest.approx(zero_based.rate)
        assert shifted.rate == pytest.approx(1.0)

    def test_from_file_bad_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.5\nnot-a-number\n")
        with pytest.raises(ConfigurationError, match="not a timestamp"):
            TraceArrivals.from_file(str(path))


class TestSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            PoissonSpec(),
            MMPPSpec(burst_factor=6.0, on_fraction=0.3, mean_cycle=5.0),
            DiurnalSpec(amplitude=0.5, period=30.0),
            TraceSpec(times=(0.5, 1.0, 2.0)),
        ],
    )
    def test_dict_round_trip(self, spec):
        assert arrival_spec_from_dict(spec.to_dict()) == spec

    def test_build_targets_requested_rate(self):
        for spec in (PoissonSpec(), MMPPSpec(), DiurnalSpec()):
            assert spec.build(70.0).rate == pytest.approx(70.0)

    def test_trace_build_rescales_to_rate(self):
        spec = TraceSpec(times=tuple(float(i + 1) for i in range(50)))
        process = spec.build(100.0)
        assert process.rate == pytest.approx(100.0)
        times = draw(process, 2_000)
        assert empirical_rate(times) == pytest.approx(100.0, rel=0.05)

    def test_trace_build_shifts_epoch_origin_to_zero(self):
        # Same burst shape recorded at epoch offset: the replay must not
        # open with hours of dead air before the first arrival.
        spec = TraceSpec(times=tuple(90_000.0 + i for i in range(20)))
        times = draw(spec.build(10.0), 20)
        assert times[0] == pytest.approx(0.0)
        assert empirical_rate(times) == pytest.approx(10.0, rel=0.05)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown arrival kind"):
            arrival_spec_from_dict({"kind": "fractal"})

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="mmpp"):
            arrival_spec_from_dict({"kind": "mmpp", "warp": 9})
