"""Scenario registry: catalogue, serialization, end-to-end sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import baseline_config
from repro.experiments.figures import run_scenario
from repro.experiments.runner import run_sweep
from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_from_dict,
)

BUILTIN = (
    "bursty-telecom",
    "diurnal-oltp",
    "flash-sale-hotspot",
    "paper-baseline",
    "trace-replay",
)


class TestRegistry:
    def test_builtin_catalogue_is_registered(self):
        for name in BUILTIN:
            assert name in available_scenarios()

    def test_get_unknown_name_lists_registry(self):
        with pytest.raises(ConfigurationError, match="paper-baseline"):
            get_scenario("black-friday")

    def test_register_rejects_duplicates_without_replace(self):
        scenario = get_scenario("paper-baseline")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(scenario)
        # replace=True is idempotent for the same object.
        assert register_scenario(scenario, replace=True) is scenario

    def test_all_scenarios_sorted_by_name(self):
        names = [s.name for s in all_scenarios()]
        assert names == sorted(names)

    def test_every_scenario_documents_what_it_stresses(self):
        for scenario in all_scenarios():
            assert scenario.description
            assert scenario.stresses


class TestSerialization:
    @pytest.mark.parametrize("name", BUILTIN)
    def test_dict_round_trip(self, name):
        scenario = get_scenario(name)
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert rebuilt == scenario

    def test_json_round_trip(self):
        import json

        scenario = get_scenario("flash-sale-hotspot")
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert scenario_from_dict(payload) == scenario

    def test_minimal_dict_defaults_to_baseline_axes(self):
        scenario = scenario_from_dict(
            {"name": "ad-hoc", "description": "just a test"}
        )
        assert scenario.arrivals.kind == "poisson"
        assert scenario.access.kind == "uniform"
        assert scenario.deadlines.kind == "slack"

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigurationError, match="description"):
            scenario_from_dict({"name": "nameless"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            scenario_from_dict(
                {"name": "x", "description": "y", "turbo": True}
            )


class TestToConfig:
    def test_scenario_config_carries_workload_and_classes(self):
        scenario = get_scenario("flash-sale-hotspot")
        config = scenario.to_config(num_transactions=300, replications=1)
        assert config.workload == scenario.workload_spec()
        assert config.classes == scenario.classes
        assert config.num_transactions == 300

    def test_paper_baseline_config_matches_baseline_config(self):
        # Same classes, pages, rates — only the (equivalent) workload
        # spec is attached.  run_once treats both paths identically.
        from dataclasses import replace

        scenario_config = get_scenario("paper-baseline").to_config()
        assert replace(scenario_config, workload=None) == baseline_config()

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="", description="no name")
        with pytest.raises(ConfigurationError):
            Scenario(name="x", description="y", classes=())


class TestEndToEnd:
    """Every registered scenario sweeps through BOTH executors."""

    @pytest.mark.parametrize("name", BUILTIN)
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_scenario_runs_through_executor(self, name, executor):
        results = run_scenario(
            name,
            protocols={"SCC-2S": "scc-2s"},
            arrival_rates=[110.0],
            executor=executor,
            workers=2 if executor == "process" else None,
            num_transactions=100,
            warmup_commits=10,
            replications=1,
            check_serializability=True,  # histories stay serializable
        )
        summary = results["SCC-2S"].replications[0][0]
        assert summary.committed > 0
        assert 0.0 <= summary.missed_ratio <= 100.0

    def test_paper_baseline_bit_identical_to_default_path(self):
        """The acceptance criterion: --scenario paper-baseline == seed path."""
        kwargs = dict(
            num_transactions=150,
            warmup_commits=15,
            replications=2,
            check_serializability=False,
        )
        legacy = run_sweep(
            {"SCC-2S": "scc-2s"},
            baseline_config(**kwargs),
            arrival_rates=[70.0, 150.0],
        )
        scenario = run_sweep(
            {"SCC-2S": "scc-2s"},
            get_scenario("paper-baseline").to_config(**kwargs),
            arrival_rates=[70.0, 150.0],
        )
        # RunSummary dataclass equality covers every metric field.
        assert legacy["SCC-2S"].replications == scenario["SCC-2S"].replications

    def test_serial_and_process_agree_on_a_scenario(self):
        kwargs = dict(
            protocols={"SCC-2S": "scc-2s"},
            arrival_rates=[120.0],
            num_transactions=120,
            warmup_commits=12,
            replications=2,
            check_serializability=False,
        )
        serial = run_scenario("bursty-telecom", executor="serial", **kwargs)
        process = run_scenario(
            "bursty-telecom", executor="process", workers=2, **kwargs
        )
        assert (
            serial["SCC-2S"].replications == process["SCC-2S"].replications
        )
