"""The composed generator: stream independence and seed-compat guarantees.

Two properties anchor the subsystem:

1. *Stream independence* — each axis owns its named random streams, so
   swapping the access pattern (or deadline policy, or class mix) leaves
   the arrival-time sequence bit-identical.
2. *Baseline compatibility* — the default axes reproduce the seed
   ``WorkloadGenerator`` spec-for-spec under the same seed, so every
   pre-subsystem result stays reproducible.
"""

import numpy as np
import pytest

from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.txn.generator import WorkloadGenerator
from repro.txn.spec import Step
from repro.workloads.access import UniformAccess, ZipfianAccess
from repro.workloads.arrivals import MMPPArrivals, PoissonArrivals
from repro.workloads.generator import (
    FixedOffsetDeadlines,
    SlackDeadlines,
    TransactionGenerator,
    WorkloadSpec,
    deadline_policy_from_dict,
)
from tests.conftest import make_class

SEED = 42


def make_generator(arrivals=None, access=None, deadlines=None, classes=None,
                   seed=SEED, num_pages=500):
    return TransactionGenerator(
        classes=classes or [make_class(num_steps=16)],
        num_pages=num_pages,
        step_duration=0.008,
        streams=RandomStreams(seed),
        arrivals=arrivals or PoissonArrivals(80.0),
        access=access,
        deadlines=deadlines,
    )


class TestStreamIndependence:
    def test_access_swap_leaves_arrivals_bit_identical(self):
        uniform = make_generator(access=UniformAccess())
        zipfian = make_generator(access=ZipfianAccess(theta=0.95))
        a = [s.arrival for s in uniform.generate(200)]
        b = [s.arrival for s in zipfian.generate(200)]
        assert a == b  # exact equality, not approx — same stream, same draws

    def test_deadline_swap_leaves_arrivals_and_pages_bit_identical(self):
        slack = make_generator(deadlines=SlackDeadlines())
        fixed = make_generator(deadlines=FixedOffsetDeadlines(offset=0.4))
        for a, b in zip(slack.generate(100), fixed.generate(100)):
            assert a.arrival == b.arrival
            assert a.steps == b.steps
            assert b.deadline == pytest.approx(b.arrival + 0.4)

    def test_class_mix_swap_leaves_arrivals_bit_identical(self):
        one = make_generator()
        two = make_generator(
            classes=[
                make_class(name="a", weight=0.5),
                make_class(name="b", weight=0.5),
            ]
        )
        a = [s.arrival for s in one.generate(100)]
        b = [s.arrival for s in two.generate(100)]
        assert a == b

    def test_arrival_swap_leaves_pages_bit_identical(self):
        poisson = make_generator(arrivals=PoissonArrivals(80.0))
        mmpp = make_generator(arrivals=MMPPArrivals(80.0))
        a = [s.steps for s in poisson.generate(100)]
        b = [s.steps for s in mmpp.generate(100)]
        assert a == b


class TestSeedCompatibility:
    """paper-baseline must equal the seed generator output spec-for-spec."""

    def reference_specs(self, count, classes, num_pages, rate, step, seed):
        """The seed algorithm, reimplemented verbatim against raw streams."""
        streams = RandomStreams(seed)
        weights = np.array([c.weight for c in classes], dtype=float)
        probs = weights / weights.sum()
        clock, out = 0.0, []
        for txn_id in range(count):
            clock += streams["arrivals"].exponential(1.0 / rate)
            if len(classes) == 1:
                cls = classes[0]
            else:
                cls = classes[int(streams["classes"].choice(len(classes), p=probs))]
            pages = streams["pages"].choice(
                num_pages, size=cls.num_steps, replace=False
            )
            flags = streams["writes"].random(cls.num_steps) < cls.write_probability
            steps = tuple(
                Step(page=int(p), is_write=bool(f))
                for p, f in zip(pages, flags)
            )
            deadline = clock + cls.slack_factor * cls.num_steps * step
            out.append((txn_id, clock, steps, deadline, cls.name))
        return out

    def as_tuples(self, specs):
        return [
            (s.txn_id, s.arrival, s.steps, s.deadline, s.txn_class.name)
            for s in specs
        ]

    @pytest.mark.parametrize("num_classes", [1, 2])
    def test_default_axes_match_seed_algorithm(self, num_classes):
        classes = [make_class(num_steps=16)]
        if num_classes == 2:
            classes = [
                make_class(name="long", num_steps=24, weight=0.2),
                make_class(name="short", num_steps=8, weight=0.8),
            ]
        generator = make_generator(classes=classes)
        expected = self.reference_specs(
            60, classes, num_pages=500, rate=80.0, step=0.008, seed=SEED
        )
        assert self.as_tuples(generator.generate(60)) == expected

    def test_legacy_shim_matches_new_generator(self):
        legacy = WorkloadGenerator(
            classes=[make_class(num_steps=16)],
            num_pages=500,
            arrival_rate=80.0,
            step_duration=0.008,
            streams=RandomStreams(SEED),
        )
        modern = make_generator()
        assert self.as_tuples(legacy.generate(80)) == self.as_tuples(
            modern.generate(80)
        )

    def test_default_workload_spec_is_the_baseline(self):
        spec = WorkloadSpec()
        assert isinstance(spec.arrivals.build(50.0), PoissonArrivals)
        assert spec.access == UniformAccess()
        assert spec.deadlines == SlackDeadlines()

    def test_workload_spec_dict_round_trip(self):
        spec = WorkloadSpec(
            access=ZipfianAccess(theta=0.9),
            deadlines=FixedOffsetDeadlines(offset=0.3),
        )
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_workload_spec_rejects_typoed_axis_keys(self):
        with pytest.raises(ConfigurationError, match="unknown workload keys"):
            WorkloadSpec.from_dict({"arrivials": {"kind": "mmpp"}})


class TestDeadlinePolicies:
    def test_class_slack_is_the_default(self):
        spec = next(make_generator().generate(1))
        assert spec.deadline == pytest.approx(
            spec.arrival + 2.0 * 16 * 0.008
        )

    def test_slack_override_applies_to_every_class(self):
        generator = make_generator(deadlines=SlackDeadlines(factor=3.0))
        spec = next(generator.generate(1))
        assert spec.deadline == pytest.approx(spec.arrival + 3.0 * 16 * 0.008)

    def test_fixed_offset(self):
        generator = make_generator(deadlines=FixedOffsetDeadlines(offset=0.7))
        spec = next(generator.generate(1))
        assert spec.deadline == pytest.approx(spec.arrival + 0.7)

    def test_dict_round_trip(self):
        for policy in (
            SlackDeadlines(),
            SlackDeadlines(factor=1.5),
            FixedOffsetDeadlines(offset=0.3),
        ):
            assert deadline_policy_from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlackDeadlines(factor=0.5)
        with pytest.raises(ConfigurationError):
            FixedOffsetDeadlines(offset=0.0)
        with pytest.raises(ConfigurationError, match="unknown deadline kind"):
            deadline_policy_from_dict({"kind": "astrological"})


class TestValidation:
    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionGenerator(
                classes=[],
                num_pages=100,
                step_duration=0.008,
                streams=RandomStreams(1),
                arrivals=PoissonArrivals(10.0),
            )

    def test_access_pattern_validated_against_classes(self):
        with pytest.raises(ConfigurationError):
            make_generator(classes=[make_class(num_steps=600)], num_pages=500)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(make_generator().generate(-1))
